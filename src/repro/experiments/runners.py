"""Cost-comparison runner (Tables IV and VI of the paper).

Compares the traditional flow (OMP on many post-layout samples) against
BMF-PS with the fast solver on few samples: relative error per metric,
accounted simulation cost, measured fitting cost, and the total-cost
speedup -- the paper's headline 9x (RO) and 4x (SRAM) numbers.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..bmf import BmfRegressor
from ..circuits.base import Stage, Testbench
from ..circuits.modeling import FusionProblem
from ..montecarlo import simulate_dataset
from ..regression import OrthogonalMatchingPursuit, relative_error
from ..runtime.metrics import (
    counters_delta,
    format_snapshot,
    metrics as runtime_metrics,
    snapshot_delta,
)
from .cost import CostReport, SimulationCostModel

__all__ = [
    "ChaosStreamReport",
    "CostComparison",
    "CrashRecoveryReport",
    "RollingRestartReport",
    "ServingStreamReport",
    "run_chaos_stream",
    "run_cost_comparison",
    "run_crash_recovery_stream",
    "run_rolling_restart_drill",
    "run_serving_stream",
]


@dataclass
class CostComparison:
    """OMP-vs-BMF cost table (Table IV / Table VI layout)."""

    baseline: CostReport
    fused: CostReport
    #: Runtime counter/timer deltas accumulated while the comparison ran
    #: (design-matrix cells assembled, cache hits, Monte Carlo samples, ...).
    runtime_metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Total-modeling-cost speedup of BMF over the baseline."""
        return self.fused.speedup_over(self.baseline)

    def format(self) -> str:
        rows = [
            ("", self.baseline.method, self.fused.method),
            (
                "# of post-layout training samples",
                str(self.baseline.num_samples),
                str(self.fused.num_samples),
            ),
        ]
        for metric in self.baseline.errors:
            rows.append(
                (
                    f"Modeling error for {metric}",
                    f"{self.baseline.errors[metric] * 100:.4f}%",
                    f"{self.fused.errors[metric] * 100:.4f}%",
                )
            )
        rows.extend(
            [
                (
                    "Simulation cost (Hour)",
                    f"{self.baseline.simulation_hours:.2f}",
                    f"{self.fused.simulation_hours:.2f}",
                ),
                (
                    "Fitting cost (Second)",
                    f"{self.baseline.fitting_seconds:.2f}",
                    f"{self.fused.fitting_seconds:.2f}",
                ),
                (
                    "Total modeling cost (Hour)",
                    f"{self.baseline.total_hours:.2f}",
                    f"{self.fused.total_hours:.2f}",
                ),
                ("Speedup", "1.0x", f"{self.speedup:.1f}x"),
            ]
        )
        width0 = max(len(r[0]) for r in rows)
        width1 = max(len(r[1]) for r in rows)
        width2 = max(len(r[2]) for r in rows)
        table = "\n".join(
            f"{a.ljust(width0)} | {b.ljust(width1)} | {c.ljust(width2)}"
            for a, b, c in rows
        )
        if self.runtime_metrics:
            table += "\n\n" + format_snapshot(self.runtime_metrics)
        return table


def run_cost_comparison(
    testbench: Testbench,
    metrics: Sequence[str],
    cost_model: SimulationCostModel,
    baseline_samples: int = 900,
    fused_samples: int = 100,
    rng: Optional[np.random.Generator] = None,
    test_size: int = 300,
    early_samples: int = 3000,
    early_method: str = "omp",
    omp_max_terms: Optional[int] = None,
    early_coefficients: Optional[Dict[str, np.ndarray]] = None,
) -> CostComparison:
    """Run the Table IV / Table VI comparison.

    The Monte Carlo training pool is shared across metrics (one simulation
    yields every metric), so simulation cost is paid once -- matching the
    paper's accounting.
    """
    if rng is None:
        rng = np.random.default_rng(2)
    metrics = tuple(metrics)
    metrics_before = runtime_metrics.snapshot()
    pool = simulate_dataset(
        testbench, Stage.POST_LAYOUT, max(baseline_samples, fused_samples), rng, metrics
    )
    test = simulate_dataset(testbench, Stage.POST_LAYOUT, test_size, rng, metrics)

    baseline_errors: Dict[str, float] = {}
    fused_errors: Dict[str, float] = {}
    baseline_fit_seconds = 0.0
    fused_fit_seconds = 0.0

    for metric in metrics:
        problem = FusionProblem(testbench, metric)
        if early_coefficients is not None and metric in early_coefficients:
            alpha_early = early_coefficients[metric]
        else:
            alpha_early = problem.fit_early_model(
                early_samples, rng, method=early_method
            )
        aligned = problem.align_early_coefficients(alpha_early)
        missing = problem.missing_indices()
        basis = problem.late_basis

        design_baseline = basis.design_matrix(pool.x[:baseline_samples])
        design_fused = design_baseline[:fused_samples]
        design_test = basis.design_matrix(test.x)
        target = pool.metric(metric)
        target_test = test.metric(metric)

        start = time.perf_counter()
        omp = OrthogonalMatchingPursuit(basis, max_terms=omp_max_terms)
        coefficients = omp.fit_design(design_baseline, target[:baseline_samples])
        baseline_fit_seconds += time.perf_counter() - start
        baseline_errors[metric] = relative_error(
            design_test @ coefficients, target_test
        )

        start = time.perf_counter()
        bmf = BmfRegressor(
            basis, aligned, prior_kind="select", missing_indices=missing
        )
        coefficients = bmf.fit_design(design_fused, target[:fused_samples])
        fused_fit_seconds += time.perf_counter() - start
        fused_errors[metric] = relative_error(design_test @ coefficients, target_test)

    baseline = CostReport(
        method="OMP",
        num_samples=baseline_samples,
        errors=baseline_errors,
        simulation_hours=cost_model.simulation_hours(baseline_samples),
        fitting_seconds=baseline_fit_seconds,
    )
    fused = CostReport(
        method="BMF-PS (fast solver)",
        num_samples=fused_samples,
        errors=fused_errors,
        simulation_hours=cost_model.simulation_hours(fused_samples),
        fitting_seconds=fused_fit_seconds,
    )
    return CostComparison(
        baseline,
        fused,
        runtime_metrics=snapshot_delta(metrics_before, runtime_metrics.snapshot()),
    )


@dataclass
class ServingStreamReport:
    """Outcome of one streaming fit-publish-serve run (docs/serving.md)."""

    metric: str
    batch_sizes: Sequence[int]
    #: CV/apparent modeling error after each arriving batch.
    cv_error_history: Sequence[float]
    #: ``"incremental"`` / ``"full"`` / ``"fallback"`` per refit.
    refit_modes: Sequence[str]
    #: Relative error of the finally served model on held-out samples.
    test_error: float
    #: Number of versions published to the registry.
    versions_published: int
    #: :meth:`repro.serving.PredictionEngine.stats` snapshot.
    engine_stats: Dict[str, float] = field(default_factory=dict)
    #: Runtime counter/timer deltas accumulated during the stream
    #: (``serving.requests``, ``woodbury.incremental_refits``, ...).
    runtime_metrics: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"Streaming BMF serving run for metric {self.metric!r}",
            f"  batches              : {list(self.batch_sizes)}",
            f"  refit modes          : {list(self.refit_modes)}",
            f"  final CV error       : {self.cv_error_history[-1] * 100:.4f}%",
            f"  held-out rel. error  : {self.test_error * 100:.4f}%",
            f"  versions published   : {self.versions_published}",
            f"  requests served      : {self.engine_stats.get('requests', 0):.0f}",
            f"  mean batch requests  : "
            f"{self.engine_stats.get('mean_batch_requests', 0.0):.2f}",
            f"  mean latency (ms)    : "
            f"{self.engine_stats.get('mean_latency_seconds', 0.0) * 1e3:.3f}",
        ]
        text = "\n".join(lines)
        if self.runtime_metrics:
            text += "\n\n" + format_snapshot(self.runtime_metrics)
        return text


def run_serving_stream(
    testbench: Testbench,
    metric: str,
    batch_sizes: Sequence[int] = (30, 10, 10, 10),
    requests_per_batch: int = 16,
    rng: Optional[np.random.Generator] = None,
    test_size: int = 200,
    early_samples: int = 3000,
    model_name: Optional[str] = None,
) -> ServingStreamReport:
    """Drive the full streaming loop: fit -> publish -> serve -> repeat.

    Late-stage samples arrive in ``batch_sizes`` waves.  Each wave is folded
    into a :class:`repro.bmf.SequentialBmf` (incremental Woodbury refit), the
    refreshed model is atomically published to a
    :class:`repro.serving.ModelRegistry`, and ``requests_per_batch``
    prediction requests are answered by a
    :class:`repro.serving.PredictionEngine` against the just-published
    version.  The report carries the error trajectory, the refit modes
    actually taken, engine throughput/latency, and the runtime-metrics delta.
    """
    # Imported here (not at module top) to keep the serving layer an
    # optional consumer of the experiments package rather than a hard
    # import cycle: repro.serving never imports repro.experiments.
    from ..bmf import SequentialBmf
    from ..serving import ModelRegistry, PredictionEngine

    if rng is None:
        rng = np.random.default_rng(7)
    batch_sizes = tuple(int(b) for b in batch_sizes)
    if not batch_sizes or any(b <= 0 for b in batch_sizes):
        raise ValueError(f"batch_sizes must be positive, got {batch_sizes}")
    if requests_per_batch < 1:
        raise ValueError(
            f"requests_per_batch must be >= 1, got {requests_per_batch}"
        )
    name = metric if model_name is None else model_name

    problem = FusionProblem(testbench, metric)
    alpha_early = problem.fit_early_model(early_samples, rng)
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()
    basis = problem.late_basis

    pool = simulate_dataset(
        testbench, Stage.POST_LAYOUT, sum(batch_sizes), rng, (metric,)
    )
    test = simulate_dataset(testbench, Stage.POST_LAYOUT, test_size, rng, (metric,))
    target = pool.metric(metric)

    metrics_before = runtime_metrics.snapshot()
    sequential = SequentialBmf(
        basis, aligned, prior_kind="select", missing_indices=missing
    )
    registry = ModelRegistry()
    refit_modes = []
    with PredictionEngine(registry) as engine:
        offset = 0
        for batch in batch_sizes:
            sequential.add_samples(
                pool.x[offset : offset + batch], target[offset : offset + batch]
            )
            offset += batch
            refit_modes.append(sequential.last_refit_mode)
            registry.publish(name, sequential)
            rows = rng.integers(0, test.x.shape[0], size=requests_per_batch)
            futures = [engine.submit(name, test.x[row]) for row in rows]
            for future in futures:
                future.result(timeout=30.0)
        predicted = engine.predict(name, test.x)
        engine_stats = engine.stats()
    test_error = relative_error(predicted, test.metric(metric))

    return ServingStreamReport(
        metric=metric,
        batch_sizes=batch_sizes,
        cv_error_history=list(sequential.cv_error_history),
        refit_modes=refit_modes,
        test_error=test_error,
        versions_published=len(registry.versions(name)),
        engine_stats=engine_stats,
        runtime_metrics=snapshot_delta(metrics_before, runtime_metrics.snapshot()),
    )


@dataclass
class ChaosStreamReport:
    """Outcome of one fault-injected streaming run (docs/faults.md).

    The counter dicts hold only integer event counts (no wall-clock), so
    two runs with the same seed and fault plans produce *identical*
    reports -- the property the chaos suite asserts bitwise.
    """

    metric: str
    seed: int
    batch_sizes: Sequence[int]
    #: ``(ok, mode)`` per arriving batch; a failed refit leaves the fitter
    #: rolled back and simply skips that batch's publish.
    refit_outcomes: Sequence[object]
    #: Requests whose future resolved with a prediction.
    answered_requests: int
    #: Requests whose future resolved with an exception.
    failed_requests: int
    #: Requests never submitted because no version was published yet.
    skipped_requests: int
    #: Publishes attempted / rejected (``PublishRejectedError``).
    publish_attempts: int
    publish_rejections: int
    #: Versions retained by the registry at the end of the run.
    versions_published: int
    #: Largest (current - served) version gap any answered request saw.
    max_version_lag: int
    #: ``faults.*`` counter deltas (injection bookkeeping).
    fault_counters: Dict[str, int] = field(default_factory=dict)
    #: ``serving.*`` counter deltas (engine + registry resilience events).
    serving_counters: Dict[str, int] = field(default_factory=dict)
    #: Final :meth:`repro.serving.PredictionEngine.stats` snapshot.
    engine_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return self.answered_requests + self.failed_requests

    @property
    def answered_fraction(self) -> float:
        """Fraction of submitted requests that got a prediction."""
        total = self.total_requests
        return self.answered_requests / total if total else 0.0

    def deterministic_signature(self) -> Dict[str, object]:
        """Everything that must be bitwise identical across same-seed runs.

        Timers and latency statistics are deliberately excluded; what
        remains is pure event counting driven by the seeded fault plans.
        """
        return {
            "refit_outcomes": tuple(
                (outcome.ok, outcome.mode, outcome.num_samples)
                for outcome in self.refit_outcomes
            ),
            "answered_requests": self.answered_requests,
            "failed_requests": self.failed_requests,
            "skipped_requests": self.skipped_requests,
            "publish_attempts": self.publish_attempts,
            "publish_rejections": self.publish_rejections,
            "versions_published": self.versions_published,
            "max_version_lag": self.max_version_lag,
            "fault_counters": dict(self.fault_counters),
            "serving_counters": dict(self.serving_counters),
        }

    def format(self) -> str:
        lines = [
            f"Chaos stream run for metric {self.metric!r} (seed {self.seed})",
            f"  batches              : {list(self.batch_sizes)}",
            f"  refits ok/failed     : "
            f"{sum(1 for o in self.refit_outcomes if o.ok)}"
            f"/{sum(1 for o in self.refit_outcomes if not o.ok)}",
            f"  requests answered    : {self.answered_requests}"
            f"/{self.total_requests}"
            f" ({self.answered_fraction * 100:.1f}%)",
            f"  requests skipped     : {self.skipped_requests}",
            f"  publishes (rejected) : {self.publish_attempts}"
            f" ({self.publish_rejections})",
            f"  versions retained    : {self.versions_published}",
            f"  max version lag      : {self.max_version_lag}",
        ]
        text = "\n".join(lines)
        merged = {**self.fault_counters, **self.serving_counters}
        if merged:
            text += "\n\n" + format_snapshot(merged, title="Chaos counters")
        return text


def run_chaos_stream(
    testbench: Testbench,
    metric: str,
    batch_sizes: Sequence[int] = (30, 10, 10, 10),
    requests_per_batch: int = 16,
    fault_plans: Sequence[object] = (),
    seed: int = 0,
    test_size: int = 100,
    early_samples: int = 3000,
    model_name: Optional[str] = None,
    request_timeout_seconds: float = 30.0,
    sequential_kwargs: Optional[Dict[str, object]] = None,
    engine_kwargs: Optional[Dict[str, object]] = None,
) -> ChaosStreamReport:
    """:func:`run_serving_stream` under armed fault plans, deterministically.

    The fit -> publish -> serve loop runs with ``fault_plans`` armed for its
    whole duration: refits go through
    :meth:`repro.bmf.SequentialBmf.try_add_samples` (a failed refit rolls
    back and skips that publish), publishes absorb
    :class:`~repro.serving.PublishRejectedError`, and every prediction
    request is awaited **sequentially** so the order of failpoint hits --
    and therefore every ``faults.*`` / ``serving.*`` counter -- is a pure
    function of ``seed`` and the plans.  Two calls with equal arguments
    yield equal :meth:`ChaosStreamReport.deterministic_signature` s.
    """
    from ..bmf import SequentialBmf
    from ..faults import inject
    from ..serving import ModelRegistry, PredictionEngine, PublishRejectedError

    rng = np.random.default_rng(seed)
    batch_sizes = tuple(int(b) for b in batch_sizes)
    if not batch_sizes or any(b <= 0 for b in batch_sizes):
        raise ValueError(f"batch_sizes must be positive, got {batch_sizes}")
    if requests_per_batch < 1:
        raise ValueError(
            f"requests_per_batch must be >= 1, got {requests_per_batch}"
        )
    name = metric if model_name is None else model_name

    problem = FusionProblem(testbench, metric)
    alpha_early = problem.fit_early_model(early_samples, rng)
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()
    basis = problem.late_basis

    pool = simulate_dataset(
        testbench, Stage.POST_LAYOUT, sum(batch_sizes), rng, (metric,)
    )
    test = simulate_dataset(testbench, Stage.POST_LAYOUT, test_size, rng, (metric,))
    target = pool.metric(metric)

    counters_before = runtime_metrics.counters()
    # sequential_kwargs overrides the defaults wholesale (e.g. a fixed-eta
    # configuration exercises the border-updated Cholesky path, where
    # injected solver faults are absorbed by the woodbury.fallbacks escape
    # hatch instead of failing the refit).
    seq_kwargs: Dict[str, object] = {"prior_kind": "select"}
    seq_kwargs.update(sequential_kwargs or {})
    sequential = SequentialBmf(
        basis, aligned, missing_indices=missing, **seq_kwargs
    )
    registry = ModelRegistry()
    refit_outcomes = []
    answered = failed = skipped = 0
    publish_attempts = publish_rejections = 0
    armed = inject(*fault_plans) if fault_plans else contextlib.nullcontext()
    with PredictionEngine(registry, **(engine_kwargs or {})) as engine:
        with armed:
            offset = 0
            for batch in batch_sizes:
                outcome = sequential.try_add_samples(
                    pool.x[offset : offset + batch],
                    target[offset : offset + batch],
                )
                offset += batch
                refit_outcomes.append(outcome)
                if outcome.ok:
                    publish_attempts += 1
                    try:
                        registry.publish(name, sequential)
                    except PublishRejectedError:
                        publish_rejections += 1
                rows = rng.integers(0, test.x.shape[0], size=requests_per_batch)
                if name not in registry:
                    # Nothing servable yet (every publish so far failed);
                    # the registry would raise KeyError per request.
                    skipped += len(rows)
                    continue
                for row in rows:
                    # One request at a time: concurrent submission would
                    # make batch composition (and hence counter values)
                    # timing-dependent.
                    future = engine.submit(name, test.x[row])
                    try:
                        future.result(timeout=request_timeout_seconds)
                    except Exception:
                        failed += 1
                    else:
                        answered += 1
        engine_stats = engine.stats()
    counter_delta = counters_delta(counters_before, runtime_metrics.counters())

    return ChaosStreamReport(
        metric=metric,
        seed=int(seed),
        batch_sizes=batch_sizes,
        refit_outcomes=refit_outcomes,
        answered_requests=answered,
        failed_requests=failed,
        skipped_requests=skipped,
        publish_attempts=publish_attempts,
        publish_rejections=publish_rejections,
        versions_published=len(registry.versions(name)),
        max_version_lag=int(engine_stats["max_version_lag"]),
        fault_counters={
            k: v for k, v in counter_delta.items() if k.startswith("faults.")
        },
        serving_counters={
            k: v for k, v in counter_delta.items() if k.startswith("serving.")
        },
        engine_stats=engine_stats,
    )


@dataclass
class CrashRecoveryReport:
    """Outcome of one fit -> publish -> kill -> recover -> serve run.

    Like :class:`ChaosStreamReport`, every field that enters
    :meth:`deterministic_signature` is an integer event count, a boolean,
    or a tuple of them -- never wall-clock -- so two runs with the same
    seed produce identical signatures.
    """

    metric: str
    seed: int
    batch_sizes: Sequence[int]
    #: Publishes completed before the crash was injected.
    crash_after_batches: int
    #: Failpoint the simulated kill fired at (``store.write``/``store.fsync``).
    crash_failpoint: str
    #: Whether the injected :class:`~repro.faults.SimulatedCrash` surfaced.
    crash_observed: bool
    #: Record files visible in ``records/`` right after the crash (a
    #: ``store.fsync`` kill leaves a torn one; ``store.write`` leaves none).
    records_visible_after_crash: int
    #: Versions re-admitted by recovery, ``(name, version)`` in order.
    recovered_versions: Sequence[object]
    #: Records quarantined during recovery (torn/corrupt; never served).
    quarantined_records: int
    #: Recovered registry snapshot == last pre-crash durable snapshot.
    recovered_bitwise_identical: bool
    #: Whether the sequential fitter warm-restarted from persisted state.
    rearmed: bool
    #: ``(ok, mode)`` per refit, pre-crash then post-recovery.
    refit_outcomes: Sequence[object]
    answered_requests: int
    failed_requests: int
    publish_attempts: int
    publish_rejections: int
    #: Versions retained by the post-recovery registry at the end.
    versions_published: int
    # -- overload burst (2x the queue bound against a paused dispatcher) --
    queue_bound: int
    burst_staged_expired: int
    burst_live_submitted: int
    burst_rejected: int
    burst_answered: int
    peak_queue_depth: int
    shed_expired: int
    shed_rejected: int
    #: ``faults.*`` / ``serving.*`` / ``store.*`` counter deltas.
    fault_counters: Dict[str, int] = field(default_factory=dict)
    serving_counters: Dict[str, int] = field(default_factory=dict)
    store_counters: Dict[str, int] = field(default_factory=dict)
    #: Final :meth:`repro.serving.PredictionEngine.stats` snapshot.
    engine_stats: Dict[str, object] = field(default_factory=dict)

    def deterministic_signature(self) -> Dict[str, object]:
        """Everything that must be bitwise identical across same-seed runs."""
        return {
            "crash_after_batches": self.crash_after_batches,
            "crash_failpoint": self.crash_failpoint,
            "crash_observed": self.crash_observed,
            "records_visible_after_crash": self.records_visible_after_crash,
            "recovered_versions": tuple(self.recovered_versions),
            "quarantined_records": self.quarantined_records,
            "recovered_bitwise_identical": self.recovered_bitwise_identical,
            "rearmed": self.rearmed,
            "refit_outcomes": tuple(
                (outcome.ok, outcome.mode, outcome.num_samples)
                for outcome in self.refit_outcomes
            ),
            "answered_requests": self.answered_requests,
            "failed_requests": self.failed_requests,
            "publish_attempts": self.publish_attempts,
            "publish_rejections": self.publish_rejections,
            "versions_published": self.versions_published,
            "queue_bound": self.queue_bound,
            "burst_staged_expired": self.burst_staged_expired,
            "burst_live_submitted": self.burst_live_submitted,
            "burst_rejected": self.burst_rejected,
            "burst_answered": self.burst_answered,
            "peak_queue_depth": self.peak_queue_depth,
            "shed_expired": self.shed_expired,
            "shed_rejected": self.shed_rejected,
            "fault_counters": dict(self.fault_counters),
            "serving_counters": dict(self.serving_counters),
            "store_counters": dict(self.store_counters),
        }

    def format(self) -> str:
        lines = [
            f"Crash-recovery run for metric {self.metric!r} (seed {self.seed})",
            f"  crash point          : {self.crash_failpoint} after "
            f"{self.crash_after_batches} publishes",
            f"  records after crash  : {self.records_visible_after_crash}"
            f" ({self.quarantined_records} quarantined on recovery)",
            f"  recovered versions   : {list(self.recovered_versions)}",
            f"  bitwise identical    : {self.recovered_bitwise_identical}",
            f"  warm restart         : {self.rearmed}",
            f"  requests answered    : {self.answered_requests}"
            f"/{self.answered_requests + self.failed_requests}",
            f"  burst shed (exp/rej) : {self.shed_expired}"
            f"/{self.shed_rejected} (peak depth {self.peak_queue_depth}"
            f" <= bound {self.queue_bound})",
        ]
        text = "\n".join(lines)
        merged = {
            **self.fault_counters,
            **self.serving_counters,
            **self.store_counters,
        }
        if merged:
            text += "\n\n" + format_snapshot(merged, title="Recovery counters")
        return text


def run_crash_recovery_stream(
    testbench: Testbench,
    metric: str,
    store_root,
    batch_sizes: Sequence[int] = (30, 10, 10, 10),
    crash_after_batches: int = 2,
    crash_failpoint: str = "store.fsync",
    requests_per_batch: int = 16,
    seed: int = 0,
    test_size: int = 100,
    early_samples: int = 3000,
    model_name: Optional[str] = None,
    request_timeout_seconds: float = 30.0,
    max_queue_depth: int = 16,
    sequential_kwargs: Optional[Dict[str, object]] = None,
    engine_kwargs: Optional[Dict[str, object]] = None,
) -> CrashRecoveryReport:
    """Fit -> publish -> **kill** -> recover -> serve, deterministically.

    Phase 1 streams ``crash_after_batches`` batches through a
    store-backed registry (write-ahead persistence), snapshotting the
    registry after each durable publish.  Phase 2 fits one more batch and
    injects a :class:`~repro.faults.SimulatedCrash` at
    ``crash_failpoint`` during its publish, then abandons every live
    object -- fitter, registry, engine -- exactly as a killed process
    would.  Phase 3 recovers from the store directory alone: corrupt or
    torn records are quarantined, valid ones rebuild a registry that must
    be *bitwise identical* to the last pre-crash snapshot, and the
    sequential fitter warm-restarts from its persisted samples and
    Cholesky factor.  Phase 4 replays the crashed batch plus the
    remaining stream against the recovered state.  Phase 5 drives a
    2x-queue-bound overload burst against a paused dispatcher to exercise
    admission control (shed-oldest-expired, then reject) with
    deterministic counters.

    Like :func:`run_chaos_stream`, requests are awaited sequentially and
    every signature field is event-count-only, so the
    :meth:`CrashRecoveryReport.deterministic_signature` is a pure
    function of the arguments.
    """
    from ..bmf import SequentialBmf
    from ..faults import Deadline, FaultPlan, SimulatedCrash, inject
    from ..serving import (
        EngineOverloadedError,
        ModelRegistry,
        PredictionEngine,
        PublishRejectedError,
    )
    from ..store import ModelStore, RecoveryManager

    rng = np.random.default_rng(seed)
    batch_sizes = tuple(int(b) for b in batch_sizes)
    if not batch_sizes or any(b <= 0 for b in batch_sizes):
        raise ValueError(f"batch_sizes must be positive, got {batch_sizes}")
    if not 1 <= crash_after_batches < len(batch_sizes):
        raise ValueError(
            f"crash_after_batches must be in [1, {len(batch_sizes) - 1}], "
            f"got {crash_after_batches}"
        )
    if crash_failpoint not in ("store.write", "store.fsync"):
        raise ValueError(
            "crash_failpoint must be 'store.write' or 'store.fsync', got "
            f"{crash_failpoint!r}"
        )
    if max_queue_depth < 1:
        raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
    name = metric if model_name is None else model_name

    problem = FusionProblem(testbench, metric)
    alpha_early = problem.fit_early_model(early_samples, rng)
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()
    basis = problem.late_basis

    pool = simulate_dataset(
        testbench, Stage.POST_LAYOUT, sum(batch_sizes), rng, (metric,)
    )
    test = simulate_dataset(testbench, Stage.POST_LAYOUT, test_size, rng, (metric,))
    target = pool.metric(metric)

    counters_before = runtime_metrics.counters()
    seq_kwargs: Dict[str, object] = {"prior_kind": "select"}
    seq_kwargs.update(sequential_kwargs or {})
    eng_kwargs: Dict[str, object] = {"max_queue_depth": max_queue_depth}
    eng_kwargs.update(engine_kwargs or {})

    def make_fitter() -> "SequentialBmf":
        return SequentialBmf(basis, aligned, missing_indices=missing, **seq_kwargs)

    refit_outcomes = []
    answered = failed = 0
    publish_attempts = publish_rejections = 0

    def serve_batch(engine, registry) -> None:
        nonlocal answered, failed
        rows = rng.integers(0, test.x.shape[0], size=requests_per_batch)
        if name not in registry:
            return
        for row in rows:
            # Sequential awaits keep counter values timing-independent.
            future = engine.submit(name, test.x[row])
            try:
                future.result(timeout=request_timeout_seconds)
            except Exception:
                failed += 1
            else:
                answered += 1

    # ----- Phase 1+2: pre-crash stream, then the killed publish ---------
    store = ModelStore(store_root)
    sequential = make_fitter()
    registry = ModelRegistry(store=store)
    durable_snapshot: Dict[str, object] = registry.snapshot()
    crash_observed = False
    with PredictionEngine(registry, **eng_kwargs) as engine:
        offset = 0
        for index in range(crash_after_batches):
            batch = batch_sizes[index]
            outcome = sequential.try_add_samples(
                pool.x[offset : offset + batch], target[offset : offset + batch]
            )
            offset += batch
            refit_outcomes.append(outcome)
            if outcome.ok:
                publish_attempts += 1
                try:
                    registry.publish(name, sequential)
                except PublishRejectedError:
                    publish_rejections += 1
                else:
                    durable_snapshot = registry.snapshot()
            serve_batch(engine, registry)

        crash_batch = batch_sizes[crash_after_batches]
        outcome = sequential.try_add_samples(
            pool.x[offset : offset + crash_batch],
            target[offset : offset + crash_batch],
        )
        refit_outcomes.append(outcome)
        if outcome.ok:
            publish_attempts += 1
            kill = FaultPlan.fail_once(crash_failpoint, error=SimulatedCrash)
            try:
                with inject(kill):
                    registry.publish(name, sequential)
            except SimulatedCrash:
                crash_observed = True
            else:  # plan did not fire (publish skipped earlier) -- still durable
                durable_snapshot = registry.snapshot()
    # The process is now "dead": drop every live object.  Only the store
    # directory and the (host-side) random stream survive.
    records_visible = len(store.record_paths())
    del sequential, registry, engine, store

    # ----- Phase 3: recovery from the store directory alone -------------
    store = ModelStore(store_root)
    recovery = RecoveryManager(store).recover(
        registry=ModelRegistry(store=store)
    )
    registry = recovery.registry
    recovered_identical = registry.snapshot() == durable_snapshot

    sequential = make_fitter()
    state = recovery.sequential_state(name)
    rearmed = state is not None
    if rearmed:
        sequential.rearm(state)

    # ----- Phase 4: replay the crashed batch + the rest of the stream ---
    with PredictionEngine(registry, **eng_kwargs) as engine:
        offset = sum(batch_sizes[:crash_after_batches])
        for batch in batch_sizes[crash_after_batches:]:
            outcome = sequential.try_add_samples(
                pool.x[offset : offset + batch], target[offset : offset + batch]
            )
            offset += batch
            refit_outcomes.append(outcome)
            if outcome.ok:
                publish_attempts += 1
                try:
                    registry.publish(name, sequential)
                except PublishRejectedError:
                    publish_rejections += 1
            serve_batch(engine, registry)

        # ----- Phase 5: 2x-bound saturation burst, dispatcher paused ----
        engine.pause_dispatch()
        stale = Deadline.after(1e-9)
        while not stale.expired:  # nanosecond deadline: spin, do not sleep
            pass
        staged = []
        for _ in range(max_queue_depth):
            staged.append(engine.submit(name, test.x[0], deadline=stale))
        live = []
        burst_rejected = 0
        for _ in range(2 * max_queue_depth):
            try:
                live.append(
                    engine.submit(
                        name, test.x[0], timeout=request_timeout_seconds
                    )
                )
            except EngineOverloadedError:
                burst_rejected += 1
        engine.resume_dispatch()
        burst_answered = 0
        for future in live:
            try:
                future.result(timeout=request_timeout_seconds)
            except Exception:
                continue  # unanswered: absent from burst_answered
            burst_answered += 1
        for future in staged:  # shed futures resolve with DeadlineExpiredError
            future.exception(timeout=request_timeout_seconds)
        engine_stats = engine.stats()

    counter_delta = counters_delta(counters_before, runtime_metrics.counters())
    return CrashRecoveryReport(
        metric=metric,
        seed=int(seed),
        batch_sizes=batch_sizes,
        crash_after_batches=crash_after_batches,
        crash_failpoint=crash_failpoint,
        crash_observed=crash_observed,
        records_visible_after_crash=records_visible,
        recovered_versions=recovery.restored,
        quarantined_records=len(recovery.quarantined),
        recovered_bitwise_identical=recovered_identical,
        rearmed=rearmed,
        refit_outcomes=refit_outcomes,
        answered_requests=answered,
        failed_requests=failed,
        publish_attempts=publish_attempts,
        publish_rejections=publish_rejections,
        versions_published=len(registry.versions(name)),
        queue_bound=max_queue_depth,
        burst_staged_expired=len(staged),
        burst_live_submitted=len(live),
        burst_rejected=burst_rejected,
        burst_answered=burst_answered,
        peak_queue_depth=int(engine_stats["peak_queue_depth"]),
        shed_expired=int(engine_stats["shed_expired"]),
        shed_rejected=int(engine_stats["shed_rejected"]),
        fault_counters={
            k: v for k, v in counter_delta.items() if k.startswith("faults.")
        },
        serving_counters={
            k: v for k, v in counter_delta.items() if k.startswith("serving.")
        },
        store_counters={
            k: v for k, v in counter_delta.items() if k.startswith("store.")
        },
        engine_stats=engine_stats,
    )


@dataclass
class RollingRestartReport:
    """Outcome of one zero-downtime rolling-restart drill.

    Every field that enters :meth:`deterministic_signature` is an event
    count, a tuple of them, or a mode string -- never wall-clock -- so two
    runs with the same seed produce identical signatures.
    """

    seed: int
    num_shards: int
    replication_factor: int
    num_models: int
    #: Versions published across all phases (pre-stream + post-rearm).
    versions_published: int
    #: Whether the store was compacted under live traffic mid-drill.
    compacted: bool
    history_window: int
    #: Live store generation when the drill finished (0 = never compacted).
    generation: int
    #: Global journal offset the live generation's checkpoint covers.
    checkpoint_offset: int
    #: Shard ids in the order the drill restarted them.
    restart_order: Sequence[int]
    #: Versions each restarted shard restored from the store, same order.
    restart_restored: Sequence[int]
    requests_issued: int
    answered_requests: int
    #: Must be 0: every accepted request is answered by a warm replica.
    failed_requests: int
    #: ``last_refit_mode`` per model for the first post-restart batch --
    #: all ``"incremental"`` means no refit-from-scratch ever ran.
    rearm_modes: Sequence[str]
    #: ``sequential.rearms`` counter delta (one warm rearm per model).
    rearms: int
    #: ``woodbury.fallbacks`` counter delta (must be 0).
    woodbury_fallbacks: int
    #: ``serving.*`` / ``store.*`` counter deltas over the whole drill.
    serving_counters: Dict[str, int] = field(default_factory=dict)
    store_counters: Dict[str, int] = field(default_factory=dict)
    #: Final :meth:`repro.serving.ShardRouter.stats` snapshot.
    router_stats: Dict[str, object] = field(default_factory=dict)

    def deterministic_signature(self) -> Dict[str, object]:
        """Everything that must be bitwise identical across same-seed runs."""
        return {
            "num_shards": self.num_shards,
            "replication_factor": self.replication_factor,
            "num_models": self.num_models,
            "versions_published": self.versions_published,
            "compacted": self.compacted,
            "history_window": self.history_window,
            "generation": self.generation,
            "checkpoint_offset": self.checkpoint_offset,
            "restart_order": tuple(self.restart_order),
            "restart_restored": tuple(self.restart_restored),
            "requests_issued": self.requests_issued,
            "answered_requests": self.answered_requests,
            "failed_requests": self.failed_requests,
            "rearm_modes": tuple(self.rearm_modes),
            "rearms": self.rearms,
            "woodbury_fallbacks": self.woodbury_fallbacks,
            "serving_counters": dict(self.serving_counters),
            "store_counters": dict(self.store_counters),
        }

    def format(self) -> str:
        lines = [
            f"Rolling-restart drill (seed {self.seed}): "
            f"{self.num_shards} shards, rf={self.replication_factor}",
            f"  models / versions    : {self.num_models}"
            f" / {self.versions_published}",
            f"  compacted            : {self.compacted}"
            f" (window {self.history_window}, generation {self.generation},"
            f" checkpoint {self.checkpoint_offset})",
            f"  restarts             : {list(self.restart_order)} restored "
            f"{list(self.restart_restored)}",
            f"  requests answered    : {self.answered_requests}"
            f"/{self.requests_issued} ({self.failed_requests} failed)",
            f"  warm rearms          : {self.rearms}"
            f" ({self.woodbury_fallbacks} woodbury fallbacks),"
            f" next batches {list(self.rearm_modes)}",
        ]
        text = "\n".join(lines)
        merged = {**self.serving_counters, **self.store_counters}
        if merged:
            text += "\n\n" + format_snapshot(merged, title="Drill counters")
        return text


def run_rolling_restart_drill(
    store_root,
    num_shards: int = 3,
    replication_factor: int = 2,
    num_models: int = 4,
    pre_batches: int = 2,
    batch_size: int = 16,
    requests_per_phase: int = 6,
    basis_vars: int = 2,
    basis_degree: int = 2,
    compact_between: bool = True,
    history_window: int = 1,
    seed: int = 0,
    request_timeout_seconds: float = 30.0,
    registry_kwargs: Optional[Dict[str, object]] = None,
    engine_kwargs: Optional[Dict[str, object]] = None,
) -> RollingRestartReport:
    """Publish -> (compact) -> restart every shard under live traffic.

    The zero-downtime drill the shard tier must survive in production:

    1. stream ``pre_batches`` sequential-BMF batches per model through a
       :class:`~repro.serving.ShardRouter` (write-ahead persistence into
       the shared store), serving between publishes;
    2. optionally compact the store *under the live router* (survivors +
       journal checkpoint into a new generation; every follower crosses
       the compaction boundary on its next poll);
    3. :meth:`~repro.serving.ShardRouter.rolling_restart` -- one shard at
       a time is stopped, rebuilt from nothing but the store directory,
       and rejoined, while the ``drive`` callback pushes live requests
       through the degraded ring (``replication_factor >= 2`` keeps every
       name on a warm replica, so **zero requests fail**);
    4. warm-rearm a fresh fitter per model from recovered state and prove
       the next ``add_samples`` is *incremental* -- no refit-from-scratch
       ever lands on the critical path (``sequential.rearms`` up,
       ``woodbury.fallbacks`` zero).

    Requests are awaited sequentially (blocking ``predict``), so every
    signature field is a pure function of the arguments: same seed, same
    :meth:`RollingRestartReport.deterministic_signature`.
    """
    from ..basis import OrthonormalBasis
    from ..bmf import SequentialBmf
    from ..serving import ShardRouter
    from ..store import ModelStore, RecoveryManager, compact

    if num_models < 1:
        raise ValueError(f"num_models must be >= 1, got {num_models}")
    if pre_batches < 1:
        raise ValueError(f"pre_batches must be >= 1, got {pre_batches}")

    rng = np.random.default_rng(seed)
    basis = OrthonormalBasis.total_degree(basis_vars, basis_degree)
    names = [f"model-{index:04d}" for index in range(num_models)]
    alphas = {name: rng.normal(size=len(basis.indices)) for name in names}
    test_x = rng.normal(size=(64, basis.num_vars))

    def make_fitter(name: str) -> "SequentialBmf":
        return SequentialBmf(
            basis, alphas[name], prior_kind="nonzero-mean", eta=1e-3
        )

    def draw(name: str, count: int):
        x = rng.normal(size=(count, basis.num_vars))
        f = basis.design_matrix(x) @ alphas[name] + 0.01 * rng.normal(size=count)
        return x, f

    counters_before = runtime_metrics.counters()
    store = ModelStore(store_root)
    router = ShardRouter(
        store,
        num_shards=num_shards,
        replication_factor=replication_factor,
        registry_kwargs=dict(registry_kwargs or {}),
        engine_kwargs=dict(engine_kwargs or {}),
    )

    issued = answered = failed = 0

    def serve_phase(_shard_id: Optional[int] = None) -> None:
        nonlocal issued, answered, failed
        for _ in range(requests_per_phase):
            name = names[int(rng.integers(0, num_models))]
            row = int(rng.integers(0, test_x.shape[0]))
            issued += 1
            try:
                # Sequential awaits keep counter values timing-independent.
                router.predict(
                    name, test_x[row], timeout=request_timeout_seconds
                )
            except Exception:
                failed += 1
            else:
                answered += 1

    fitters = {name: make_fitter(name) for name in names}
    versions_published = 0
    with router:
        # ----- Phase 1: pre-drill publish stream ------------------------
        for _ in range(pre_batches):
            for name in names:
                x, f = draw(name, batch_size)
                fitters[name].add_samples(x, f)
                router.publish(name, fitters[name])
                versions_published += 1
            serve_phase()

        # ----- Phase 2: compaction under the live router ----------------
        if compact_between:
            compact(store, history_window=history_window)
            router.catch_up()  # every follower crosses the boundary
            serve_phase()

        # ----- Phase 3: one-at-a-time restarts under live traffic ------
        restart_order = list(router.alive_shards())
        restored_map = router.rolling_restart(drive=serve_phase)
        restart_restored = [restored_map[sid] for sid in restart_order]
        serve_phase()  # the fully-restarted fleet still serves everything

        # ----- Phase 4: warm rearm, next batch must be incremental ------
        recovery = RecoveryManager(store).recover(quarantine_corrupt=False)
        rearm_modes = []
        for name in names:
            state = recovery.sequential_state(name)
            if state is None:
                rearm_modes.append("missing")
                continue
            fresh = make_fitter(name)
            fresh.rearm(state)
            x, f = draw(name, batch_size)
            fresh.add_samples(x, f)
            rearm_modes.append(fresh.last_refit_mode)
            router.publish(name, fresh)
            versions_published += 1
        serve_phase()
        router_stats = router.stats()

    view = store.journal_view()
    counter_delta = counters_delta(counters_before, runtime_metrics.counters())
    return RollingRestartReport(
        seed=int(seed),
        num_shards=int(num_shards),
        replication_factor=int(replication_factor),
        num_models=int(num_models),
        versions_published=versions_published,
        compacted=bool(compact_between),
        history_window=int(history_window),
        generation=view.generation,
        checkpoint_offset=view.checkpoint_offset,
        restart_order=tuple(restart_order),
        restart_restored=tuple(restart_restored),
        requests_issued=issued,
        answered_requests=answered,
        failed_requests=failed,
        rearm_modes=tuple(rearm_modes),
        rearms=counter_delta.get("sequential.rearms", 0),
        woodbury_fallbacks=counter_delta.get("woodbury.fallbacks", 0),
        serving_counters={
            k: v for k, v in counter_delta.items() if k.startswith("serving.")
        },
        store_counters={
            k: v for k, v in counter_delta.items() if k.startswith("store.")
        },
        router_stats=router_stats,
    )
