"""Benchmark scale configuration.

The paper's circuits have 7 177 (RO) and 66 117 (SRAM) variation variables;
sweeping Tables I-VI at that size with 50 repeats is a server-class job.
The benchmark suite therefore supports three scales selected by the
``REPRO_SCALE`` environment variable:

* ``small``  (default) -- hundreds-to-thousands of variables; every table
  and figure regenerates in minutes on a laptop while preserving the
  M >> K regime and every qualitative conclusion;
* ``medium`` -- a few thousand variables;
* ``paper``  -- the paper's dimensionality (RO ~7.2k, SRAM ~63k variables).

``REPRO_REPEATS`` overrides the number of repeated runs averaged per table
(the paper uses 50).
"""

from __future__ import annotations

import os
from typing import Tuple

from ..circuits import RingOscillator, SramReadPath
from ..process import ProcessKit

__all__ = [
    "scale",
    "repeats",
    "make_ring_oscillator",
    "make_sram",
    "table_sample_counts",
    "early_samples",
]

_SCALES = ("small", "medium", "paper")


def scale() -> str:
    """Benchmark scale from ``REPRO_SCALE`` (``small`` by default)."""
    value = os.environ.get("REPRO_SCALE", "small").lower()
    if value not in _SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {_SCALES}, got {value!r}"
        )
    return value


def repeats(default: int = 3) -> int:
    """Repeated runs per table from ``REPRO_REPEATS`` (paper: 50)."""
    value = int(os.environ.get("REPRO_REPEATS", default))
    if value < 1:
        raise ValueError(f"REPRO_REPEATS must be >= 1, got {value}")
    return value


def make_ring_oscillator() -> RingOscillator:
    """The RO instance for the current benchmark scale."""
    current = scale()
    if current == "small":
        return RingOscillator()  # ~540 post-layout variables
    if current == "medium":
        return RingOscillator(
            n_ring=41,
            n_buffer=12,
            kit=ProcessKit(params_per_device=24, interdie_params=14),
        )  # ~2.6k variables
    return RingOscillator.paper_scale()  # ~7.2k variables


def make_sram() -> SramReadPath:
    """The SRAM read path instance for the current benchmark scale."""
    current = scale()
    if current == "small":
        return SramReadPath(n_cells=32, n_timing=10)  # ~1.7k variables
    if current == "medium":
        return SramReadPath(
            n_cells=96,
            n_timing=12,
            kit=ProcessKit(params_per_device=12, interdie_params=14),
        )  # ~7.2k variables
    return SramReadPath.paper_scale()  # ~63k variables


def table_sample_counts() -> Tuple[int, ...]:
    """The K sweep of Tables I-III and V (paper: 100 .. 900 step 100)."""
    return (100, 200, 300, 400, 500, 600, 700, 800, 900)


def early_samples() -> int:
    """Schematic samples used to fit the prior model (paper: 3000)."""
    return int(os.environ.get("REPRO_EARLY_SAMPLES", 3000))
