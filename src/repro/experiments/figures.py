"""Figure runners: Monte Carlo histograms (Figs. 4, 7) and fitting-cost
sweeps (Figs. 5, 8).

Histograms render as ASCII so the benchmark harness can "regenerate the
figure" in a terminal; the underlying (counts, edges) arrays are exposed
for plotting elsewhere.

The fitting-cost sweep measures real wall-clock of

* the OMP baseline fit (with CV model-order selection),
* the full BMF-PS fit using the fast (Woodbury/kernel) solver,
* optionally the same BMF-PS fit where *every* MAP solve inside the
  cross-validation loop uses the conventional M x M Cholesky solver --
  exactly the comparison of Fig. 5.  The paper omits this curve for the
  SRAM example because it is computationally infeasible at M ~ 66k, and so
  do we at large scale.

A single-solve microbenchmark (:func:`solver_speedup`) isolates the
fast-vs-conventional solver ratio, the paper's "up to 600x" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..bmf import (
    BmfRegressor,
    GaussianCoefficientPrior,
    map_estimate,
    nonzero_mean_prior,
    zero_mean_prior,
)
from ..bmf.cross_validation import default_eta_grid
from ..circuits.base import Stage, Testbench
from ..circuits.modeling import FusionProblem
from ..montecarlo import simulate_dataset
from ..regression import OrthogonalMatchingPursuit
from ..runtime.metrics import format_snapshot, metrics as runtime_metrics, snapshot_delta

__all__ = [
    "Histogram",
    "metric_histogram",
    "FittingCostCurve",
    "run_fitting_cost",
    "solver_speedup",
]


# ----------------------------------------------------------------------
# Histograms (Figs. 4 and 7)
# ----------------------------------------------------------------------
@dataclass
class Histogram:
    """A Monte Carlo histogram of one performance metric.

    Attributes
    ----------
    counts / edges:
        As returned by :func:`numpy.histogram`.
    label:
        Axis label, e.g. ``"power"``.
    mean / std:
        Sample moments of the underlying data.
    """

    counts: np.ndarray
    edges: np.ndarray
    label: str
    mean: float
    std: float

    def format(self, width: int = 50) -> str:
        """ASCII rendering with one row per bin."""
        lines = [
            f"Histogram of {self.label} "
            f"(mean={self.mean:.4g}, std={self.std:.4g}, "
            f"n={int(self.counts.sum())})"
        ]
        peak = max(int(self.counts.max()), 1)
        for count, lo, hi in zip(self.counts, self.edges[:-1], self.edges[1:]):
            bar = "#" * int(round(width * count / peak))
            lines.append(f"{lo:>12.4g} .. {hi:>12.4g} | {bar} {int(count)}")
        return "\n".join(lines)


def metric_histogram(
    testbench: Testbench,
    metric: str,
    num_samples: int,
    rng: np.random.Generator,
    stage: Stage = Stage.POST_LAYOUT,
    bins: int = 30,
) -> Histogram:
    """Simulate ``num_samples`` Monte Carlo points and histogram the metric."""
    dataset = simulate_dataset(testbench, stage, num_samples, rng, [metric])
    values = dataset.metric(metric)
    counts, edges = np.histogram(values, bins=bins)
    return Histogram(
        counts, edges, f"{testbench.name} {metric}", float(values.mean()),
        float(values.std()),
    )


# ----------------------------------------------------------------------
# Fitting-cost sweeps (Figs. 5 and 8)
# ----------------------------------------------------------------------
@dataclass
class FittingCostCurve:
    """Fitting wall-clock per method over the sample-count sweep.

    Attributes
    ----------
    sample_counts:
        The ``K`` values swept.
    seconds:
        Method label -> measured fitting seconds per ``K``.
    num_terms:
        Size ``M`` of the late-stage basis (drives the solver comparison).
    """

    testbench_name: str
    metric: str
    sample_counts: Tuple[int, ...]
    seconds: Dict[str, np.ndarray]
    num_terms: int
    #: Runtime counter/timer deltas accumulated over the whole sweep.
    runtime_metrics: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        methods = list(self.seconds)
        lines = [
            f"Fitting cost (seconds) for {self.metric} of "
            f"{self.testbench_name} (M = {self.num_terms} basis functions)"
        ]
        header = ["K"] + methods
        widths = [6] + [max(len(m), 10) for m in methods]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for i, count in enumerate(self.sample_counts):
            cells = [str(count).ljust(widths[0])]
            for m, w in zip(methods, widths[1:]):
                cells.append(f"{self.seconds[m][i]:.4f}".ljust(w))
            lines.append(" | ".join(cells))
        if self.runtime_metrics:
            lines.append("")
            lines.append(format_snapshot(self.runtime_metrics))
        return "\n".join(lines)


def run_fitting_cost(
    testbench: Testbench,
    metric: str,
    sample_counts: Sequence[int] = (100, 300, 500, 700, 900),
    rng: Optional[np.random.Generator] = None,
    include_conventional: bool = True,
    early_samples: int = 1500,
    early_method: str = "ridge",
    omp_max_terms: Optional[int] = None,
    n_folds: int = 5,
) -> FittingCostCurve:
    """Measure fitting wall-clock per method over a ``K`` sweep (Fig. 5/8)."""
    if rng is None:
        rng = np.random.default_rng(1)
    sample_counts = tuple(int(k) for k in sample_counts)
    metrics_before = runtime_metrics.snapshot()

    problem = FusionProblem(testbench, metric)
    alpha_early = problem.fit_early_model(early_samples, rng, method=early_method)
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()
    basis = problem.late_basis

    pool = simulate_dataset(
        testbench, Stage.POST_LAYOUT, max(sample_counts), rng, [metric]
    )
    design_pool = basis.design_matrix(pool.x)
    target_pool = pool.metric(metric)

    methods = ["OMP", "BMF-PS (fast solver)"]
    if include_conventional:
        methods.append("BMF-PS (conventional solver)")
    seconds = {m: np.empty(len(sample_counts)) for m in methods}

    for i, count in enumerate(sample_counts):
        design = design_pool[:count]
        target = target_pool[:count]

        start = time.perf_counter()
        OrthogonalMatchingPursuit(basis, max_terms=omp_max_terms).fit_design(
            design, target
        )
        seconds["OMP"][i] = time.perf_counter() - start

        start = time.perf_counter()
        BmfRegressor(
            basis,
            aligned,
            prior_kind="select",
            missing_indices=missing,
            n_folds=n_folds,
        ).fit_design(design, target)
        seconds["BMF-PS (fast solver)"][i] = time.perf_counter() - start

        if include_conventional:
            seconds["BMF-PS (conventional solver)"][i] = _conventional_fit_time(
                design, target, aligned, missing, n_folds
            )

    return FittingCostCurve(
        testbench.name,
        metric,
        sample_counts,
        seconds,
        basis.size,
        runtime_metrics=snapshot_delta(metrics_before, runtime_metrics.snapshot()),
    )


def _conventional_fit_time(
    design: np.ndarray,
    target: np.ndarray,
    aligned: np.ndarray,
    missing,
    n_folds: int,
) -> float:
    """Full BMF-PS fit where every MAP solve is the M x M Cholesky.

    Mirrors the cross-validation structure of the fast path (two candidate
    priors, the default eta grid, N folds) but solves each fold/eta system
    with the conventional solver -- the Fig. 5 baseline.
    """
    priors = [
        zero_mean_prior(aligned).with_missing(missing),
        nonzero_mean_prior(aligned).with_missing(missing),
    ]
    num_samples = design.shape[0]
    fold_ids = np.arange(num_samples) % n_folds

    start = time.perf_counter()
    best: Tuple[float, GaussianCoefficientPrior, float] = (np.inf, priors[0], 1.0)
    for prior in priors:
        grid = default_eta_grid(prior, num_samples)
        errors = np.zeros(len(grid))
        for fold in range(n_folds):
            val = fold_ids == fold
            train_design, val_design = design[~val], design[val]
            train_target, val_target = target[~val], target[val]
            scale = max(float(np.linalg.norm(val_target)), 1e-300)
            for j, eta in enumerate(grid):
                coefficients = map_estimate(
                    train_design, train_target, prior, eta, solver="direct"
                )
                prediction = val_design @ coefficients
                errors[j] += float(np.linalg.norm(prediction - val_target)) / scale
        j_best = int(np.argmin(errors))
        if errors[j_best] < best[0]:
            best = (float(errors[j_best]), prior, float(grid[j_best]))
    map_estimate(design, target, best[1], best[2], solver="direct")
    return time.perf_counter() - start


def solver_speedup(
    design: np.ndarray,
    prior: GaussianCoefficientPrior,
    eta: float,
    target: Optional[np.ndarray] = None,
    repeats: int = 3,
) -> Dict[str, float]:
    """Microbenchmark one MAP solve: fast vs conventional (the 600x claim).

    Returns a dict with ``fast_seconds``, ``direct_seconds``, ``speedup``
    and the max coefficient discrepancy (should be at floating-point level,
    since the fast solver is exact).
    """
    design = np.asarray(design, dtype=float)
    if target is None:
        target = design @ prior.mean
    fast = direct = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        alpha_fast = map_estimate(design, target, prior, eta, solver="fast")
        fast = min(fast, time.perf_counter() - start)
        start = time.perf_counter()
        alpha_direct = map_estimate(design, target, prior, eta, solver="direct")
        direct = min(direct, time.perf_counter() - start)
    scale = max(float(np.max(np.abs(alpha_direct))), 1e-300)
    return {
        "fast_seconds": fast,
        "direct_seconds": direct,
        "speedup": direct / fast,
        "max_relative_difference": float(
            np.max(np.abs(alpha_fast - alpha_direct)) / scale
        ),
    }
