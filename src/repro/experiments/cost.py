"""Modeling-cost accounting (Tables IV and VI of the paper).

The paper splits total modeling cost into *simulation cost* (running the
post-layout transistor-level Monte Carlo samples of the training set) and
*fitting cost* (solving the model coefficients).  Our substrate evaluates
circuits analytically in microseconds, so the simulation cost is
*accounted* through a per-sample cost model calibrated from the paper's own
tables (Table IV: 900 RO samples = 12.58 h -> 50.3 s/sample; Table VI:
400 SRAM samples = 38.77 h -> 349 s/sample), while the fitting cost is
genuinely measured wall-clock.  The headline speedups (9x RO, 4x SRAM) are
sample-count driven, so this reproduces the tables' arithmetic faithfully;
the substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimulationCostModel", "CostReport", "RO_COST_MODEL", "SRAM_COST_MODEL"]


@dataclass(frozen=True)
class SimulationCostModel:
    """Per-sample simulation cost of a testbench, in seconds.

    Attributes
    ----------
    postlayout_seconds:
        Wall-clock cost of one post-layout transistor-level sample.
    schematic_seconds:
        Cost of one schematic-level sample (much cheaper; the paper treats
        the 3000 schematic samples as already available from design
        validation, so they are excluded from the reported cost, matching
        the paper's accounting).
    """

    postlayout_seconds: float
    schematic_seconds: float = 0.0

    def simulation_hours(self, num_postlayout_samples: int) -> float:
        """Accounted simulation cost of a training set, in hours."""
        if num_postlayout_samples < 0:
            raise ValueError("sample count must be non-negative")
        return num_postlayout_samples * self.postlayout_seconds / 3600.0


# Back-solved from the paper's Table IV / Table VI.
RO_COST_MODEL = SimulationCostModel(postlayout_seconds=12.58 * 3600.0 / 900.0)
SRAM_COST_MODEL = SimulationCostModel(postlayout_seconds=38.77 * 3600.0 / 400.0)


@dataclass(frozen=True)
class CostReport:
    """One method's row of a Table IV / Table VI style comparison.

    Attributes
    ----------
    method:
        Method label (``"OMP"``, ``"BMF-PS (fast solver)"``).
    num_samples:
        Post-layout training samples used.
    errors:
        Metric name -> relative modeling error.
    simulation_hours:
        Accounted simulation cost.
    fitting_seconds:
        Measured model-fitting wall-clock.
    """

    method: str
    num_samples: int
    errors: dict
    simulation_hours: float
    fitting_seconds: float

    @property
    def total_hours(self) -> float:
        """Total modeling cost (simulation + fitting) in hours."""
        return self.simulation_hours + self.fitting_seconds / 3600.0

    def speedup_over(self, other: "CostReport") -> float:
        """How much cheaper this method is than ``other`` (total cost)."""
        if self.total_hours <= 0:
            raise ValueError("total cost must be positive to compute a speedup")
        return other.total_hours / self.total_hours
