"""Monte Carlo sampling and dataset handling."""

from .engine import DEFAULT_CHUNK_SIZE, Dataset, simulate_dataset, train_test_split

__all__ = ["DEFAULT_CHUNK_SIZE", "Dataset", "simulate_dataset", "train_test_split"]
