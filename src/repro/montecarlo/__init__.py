"""Monte Carlo sampling and dataset handling."""

from .engine import Dataset, simulate_dataset, train_test_split

__all__ = ["Dataset", "simulate_dataset", "train_test_split"]
