"""Monte Carlo dataset generation over testbench variation spaces.

This plays the role of the paper's "transistor-level Monte Carlo
simulation": draw standard-normal variation samples, run the (behavioral)
circuit simulation, and package the ``(X, f)`` pairs for model fitting.

Generation can be chunked and spread over a worker pool
(``simulate_dataset(..., workers=N, chunk_size=...)``).  Chunking is
deterministic: every chunk gets its own child generator spawned from the
caller's RNG, and chunk boundaries depend only on ``chunk_size`` -- never
on the worker count -- so the assembled dataset is bitwise identical
whether it was produced by one worker or many.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.base import Stage, Testbench
from ..runtime.metrics import metrics as runtime_metrics

__all__ = ["Dataset", "simulate_dataset", "train_test_split", "DEFAULT_CHUNK_SIZE"]

#: Default rows per chunk when chunked generation is requested.  Fixed (and
#: independent of the worker count) so that results are reproducible.
DEFAULT_CHUNK_SIZE = 256


@dataclass
class Dataset:
    """Monte Carlo samples and the simulated metric values on them.

    Attributes
    ----------
    x:
        Variation samples, shape ``(K, R)``.
    values:
        Metric name -> simulated values of shape ``(K,)``.
    stage:
        Design stage the samples were simulated at.
    testbench_name:
        Name of the originating testbench.
    """

    x: np.ndarray
    values: Dict[str, np.ndarray]
    stage: Stage
    testbench_name: str = "testbench"

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=float)
        count = self.x.shape[0]
        # Normalize into a fresh dict: writing coerced arrays back into the
        # caller's mapping would mutate caller state and silently share it
        # between Dataset instances.
        coerced: Dict[str, np.ndarray] = {}
        for name, series in self.values.items():
            series = np.asarray(series, dtype=float)
            if series.shape != (count,):
                raise ValueError(
                    f"metric {name!r} has shape {series.shape}, expected ({count},)"
                )
            coerced[name] = series
        self.values = coerced

    @classmethod
    def _from_validated(
        cls,
        x: np.ndarray,
        values: Dict[str, np.ndarray],
        stage: Stage,
        testbench_name: str,
    ) -> "Dataset":
        """Internal constructor for data derived from an existing dataset.

        Skips ``__post_init__`` coercion: the arrays are already float
        ndarrays of consistent shape, so re-validating every ``subset`` /
        ``head`` call would only burn time in sweep loops.
        """
        dataset = object.__new__(cls)
        dataset.x = x
        dataset.values = values
        dataset.stage = stage
        dataset.testbench_name = testbench_name
        return dataset

    @property
    def size(self) -> int:
        """Number of samples ``K``."""
        return self.x.shape[0]

    @property
    def num_vars(self) -> int:
        """Dimensionality ``R`` of the variation space."""
        return self.x.shape[1]

    def metric(self, name: str) -> np.ndarray:
        """Values of one metric."""
        try:
            return self.values[name]
        except KeyError:
            raise KeyError(
                f"dataset has no metric {name!r}; available: "
                f"{sorted(self.values)}"
            ) from None

    def subset(self, rows: np.ndarray) -> "Dataset":
        """Dataset restricted to the given sample rows."""
        rows = np.asarray(rows)
        return Dataset._from_validated(
            self.x[rows],
            {name: series[rows] for name, series in self.values.items()},
            self.stage,
            self.testbench_name,
        )

    def head(self, count: int) -> "Dataset":
        """The first ``count`` samples (sweeps reuse one big dataset)."""
        if count > self.size:
            raise ValueError(
                f"requested {count} samples but the dataset has {self.size}"
            )
        return self.subset(np.arange(count))


def _chunk_sizes(count: int, chunk_size: int) -> List[int]:
    """Row counts per chunk: all ``chunk_size`` except a shorter last one."""
    sizes = [chunk_size] * (count // chunk_size)
    if count % chunk_size:
        sizes.append(count % chunk_size)
    return sizes


def simulate_dataset(
    testbench: Testbench,
    stage: Stage,
    count: int,
    rng: np.random.Generator,
    metrics: Optional[Sequence[str]] = None,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> Dataset:
    """Draw ``count`` samples at ``stage`` and simulate the given metrics.

    Parameters
    ----------
    testbench, stage, count, rng:
        As before: the circuit, its design stage, the number of Monte Carlo
        samples, and the source of randomness.
    metrics:
        Metric names to simulate (default: every metric of the testbench).
    workers:
        Size of the thread pool simulating chunks concurrently.  ``None``
        or ``1`` runs serially.  The result is bitwise identical for every
        worker count (chunks own spawned child generators and are
        reassembled in order).
    chunk_size:
        Rows per chunk.  Defaults to :data:`DEFAULT_CHUNK_SIZE` when
        ``workers`` is given, else unchunked.  Note that chunked and
        unchunked generation draw different (equally valid) sample
        streams from ``rng``; fix ``chunk_size`` to compare runs.
    """
    wanted = tuple(metrics) if metrics is not None else testbench.metrics
    for metric in wanted:
        if metric not in testbench.metrics:
            raise ValueError(
                f"{testbench.name} has no metric {metric!r}; "
                f"available: {testbench.metrics}"
            )
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    if chunk_size is None and workers is None:
        # Unchunked path: single draw from the caller's generator, exactly
        # as before chunking existed (keeps seeded datasets stable).
        with runtime_metrics.timer("montecarlo.simulate"):
            samples = testbench.sample(stage, count, rng)
            values = {
                metric: testbench.simulate(stage, samples, metric)
                for metric in wanted
            }
        runtime_metrics.increment("montecarlo.samples", count)
        return Dataset(samples, values, stage, testbench.name)

    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    num_workers = 1 if workers is None else int(workers)
    sizes = _chunk_sizes(count, chunk_size)
    # One child generator per chunk, spawned deterministically from the
    # caller's RNG: chunk i sees the same stream no matter which worker
    # runs it, or in which order.
    child_rngs = rng.spawn(len(sizes))

    def run_chunk(
        chunk: Tuple[int, np.random.Generator]
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        size, chunk_rng = chunk
        with runtime_metrics.timer("montecarlo.simulate"):
            samples = testbench.sample(stage, size, chunk_rng)
            values = {
                metric: testbench.simulate(stage, samples, metric)
                for metric in wanted
            }
        return samples, values

    jobs = list(zip(sizes, child_rngs))
    if num_workers == 1 or len(jobs) <= 1:
        results = [run_chunk(job) for job in jobs]
    else:
        with ThreadPoolExecutor(max_workers=num_workers) as pool:
            results = list(pool.map(run_chunk, jobs))

    runtime_metrics.increment("montecarlo.samples", count)
    runtime_metrics.increment("montecarlo.chunks", len(sizes))
    if not results:
        samples = testbench.sample(stage, 0, rng)
        values = {metric: np.zeros(0) for metric in wanted}
        return Dataset(samples, values, stage, testbench.name)
    samples = np.concatenate([chunk_samples for chunk_samples, _ in results])
    values = {
        metric: np.concatenate([chunk_values[metric] for _, chunk_values in results])
        for metric in wanted
    }
    return Dataset(samples, values, stage, testbench.name)


def train_test_split(
    dataset: Dataset, train_count: int, rng: Optional[np.random.Generator] = None
) -> Tuple[Dataset, Dataset]:
    """Split a dataset into non-overlapping training and testing sets.

    With ``rng`` the rows are shuffled first; otherwise the first
    ``train_count`` rows train and the rest test (samples are i.i.d., so
    both are valid -- shuffling matters only when reusing one dataset
    across repeated runs).
    """
    if not 0 < train_count < dataset.size:
        raise ValueError(
            f"train_count must be in (0, {dataset.size}), got {train_count}"
        )
    order = (
        rng.permutation(dataset.size) if rng is not None else np.arange(dataset.size)
    )
    return dataset.subset(order[:train_count]), dataset.subset(order[train_count:])
