"""Monte Carlo dataset generation over testbench variation spaces.

This plays the role of the paper's "transistor-level Monte Carlo
simulation": draw standard-normal variation samples, run the (behavioral)
circuit simulation, and package the ``(X, f)`` pairs for model fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.base import Stage, Testbench

__all__ = ["Dataset", "simulate_dataset", "train_test_split"]


@dataclass
class Dataset:
    """Monte Carlo samples and the simulated metric values on them.

    Attributes
    ----------
    x:
        Variation samples, shape ``(K, R)``.
    values:
        Metric name -> simulated values of shape ``(K,)``.
    stage:
        Design stage the samples were simulated at.
    testbench_name:
        Name of the originating testbench.
    """

    x: np.ndarray
    values: Dict[str, np.ndarray]
    stage: Stage
    testbench_name: str = "testbench"

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=float)
        count = self.x.shape[0]
        for name, series in self.values.items():
            series = np.asarray(series, dtype=float)
            if series.shape != (count,):
                raise ValueError(
                    f"metric {name!r} has shape {series.shape}, expected ({count},)"
                )
            self.values[name] = series

    @property
    def size(self) -> int:
        """Number of samples ``K``."""
        return self.x.shape[0]

    @property
    def num_vars(self) -> int:
        """Dimensionality ``R`` of the variation space."""
        return self.x.shape[1]

    def metric(self, name: str) -> np.ndarray:
        """Values of one metric."""
        try:
            return self.values[name]
        except KeyError:
            raise KeyError(
                f"dataset has no metric {name!r}; available: "
                f"{sorted(self.values)}"
            ) from None

    def subset(self, rows: np.ndarray) -> "Dataset":
        """Dataset restricted to the given sample rows."""
        rows = np.asarray(rows)
        return Dataset(
            self.x[rows],
            {name: series[rows] for name, series in self.values.items()},
            self.stage,
            self.testbench_name,
        )

    def head(self, count: int) -> "Dataset":
        """The first ``count`` samples (sweeps reuse one big dataset)."""
        if count > self.size:
            raise ValueError(
                f"requested {count} samples but the dataset has {self.size}"
            )
        return self.subset(np.arange(count))


def simulate_dataset(
    testbench: Testbench,
    stage: Stage,
    count: int,
    rng: np.random.Generator,
    metrics: Optional[Sequence[str]] = None,
) -> Dataset:
    """Draw ``count`` samples at ``stage`` and simulate the given metrics."""
    wanted = tuple(metrics) if metrics is not None else testbench.metrics
    for metric in wanted:
        if metric not in testbench.metrics:
            raise ValueError(
                f"{testbench.name} has no metric {metric!r}; "
                f"available: {testbench.metrics}"
            )
    samples = testbench.sample(stage, count, rng)
    values = {metric: testbench.simulate(stage, samples, metric) for metric in wanted}
    return Dataset(samples, values, stage, testbench.name)


def train_test_split(
    dataset: Dataset, train_count: int, rng: Optional[np.random.Generator] = None
) -> Tuple[Dataset, Dataset]:
    """Split a dataset into non-overlapping training and testing sets.

    With ``rng`` the rows are shuffled first; otherwise the first
    ``train_count`` rows train and the rest test (samples are i.i.d., so
    both are valid -- shuffling matters only when reusing one dataset
    across repeated runs).
    """
    if not 0 < train_count < dataset.size:
        raise ValueError(
            f"train_count must be in (0, {dataset.size}), got {train_count}"
        )
    order = (
        rng.permutation(dataset.size) if rng is not None else np.arange(dataset.size)
    )
    return dataset.subset(order[:train_count]), dataset.subset(order[train_count:])
