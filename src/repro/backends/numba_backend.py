"""Optional numba-JIT backend (``pip install repro[numba]``).

Accelerates the two Python/numpy-loop-bound primitives -- design-matrix
gather-product assembly and the fused assembly->predict serving kernel --
with parallel ``@njit`` loops that fuse the per-level gathers into a single
pass over the Hermite table (the numpy path makes ``depth`` blocked
``np.take`` passes plus multiplies; the JIT kernel reads each table cell
once).  ``fastmath`` stays **off** so the per-column multiply order matches
the numpy backend exactly: float64 assembly is bitwise identical to the
canonical backend, which the conformance suite checks.

Dense BLAS contractions (``matmul_t`` / ``matvec`` / ``triangular_solve``)
deliberately delegate to the numpy backend: numba brings nothing over
tuned BLAS there, and delegation keeps those results bitwise equal to the
canonical bits (so mixed numba/numpy runs share solver behavior).

When numba is not importable this module still imports cleanly;
:meth:`NumbaBackend.available` reports ``False`` and the registry falls
back to numpy (counted as ``backends.fallbacks``).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..locks import named_lock
from .numpy_backend import NumpyBackend

try:
    import numba
except ImportError:  # the extra is optional; the registry gates on available()
    numba = None

import numpy as np

__all__ = ["NumbaBackend"]


def _gather_product_impl(stacked, gather, out):
    num_samples = stacked.shape[0]
    num_cols = gather.shape[0]
    depth = gather.shape[1]
    for k in numba.prange(num_samples):
        row = stacked[k]
        for j in range(num_cols):
            acc = row[gather[j, 0]]
            for level in range(1, depth):
                acc = acc * row[gather[j, level]]
            out[k, j] = acc


def _fused_gather_matvec_impl(stacked, gather, coefficients, out):
    num_samples = stacked.shape[0]
    num_cols = gather.shape[0]
    depth = gather.shape[1]
    for k in numba.prange(num_samples):
        row = stacked[k]
        # Dtype-preserving zero: column 0 of the table is the ones column.
        total = row[0] - row[0]
        for j in range(num_cols):
            acc = row[gather[j, 0]]
            for level in range(1, depth):
                acc = acc * row[gather[j, level]]
            total = total + acc * coefficients[j]
        out[k] = total
    return out


_jit_lock = named_lock("backends.numba.jit")
_jit_cache: Dict[str, Callable] = {}


def _jitted(name: str, impl: Callable) -> Callable:
    """Compile ``impl`` lazily, once, under a lock (import stays cheap)."""
    with _jit_lock:
        compiled = _jit_cache.get(name)
        if compiled is None:
            compiled = numba.njit(parallel=True, fastmath=False, cache=False)(impl)
            _jit_cache[name] = compiled
        return compiled


class NumbaBackend(NumpyBackend):
    """JIT assembly/fused kernels; BLAS contractions delegate to numpy."""

    name = "numba"

    @classmethod
    def available(cls) -> bool:
        return numba is not None

    @classmethod
    def unavailable_reason(cls) -> str:
        return "numba is not installed (pip install repro[numba])"

    def gather_product(self, stacked: np.ndarray, gather: np.ndarray) -> np.ndarray:
        out = np.empty((stacked.shape[0], gather.shape[0]), dtype=stacked.dtype)
        kernel = _jitted("gather_product", _gather_product_impl)
        kernel(np.ascontiguousarray(stacked), gather, out)
        return out

    def fused_gather_matvec(
        self, stacked: np.ndarray, gather: np.ndarray, coefficients: np.ndarray
    ) -> np.ndarray:
        out = np.empty(stacked.shape[0], dtype=stacked.dtype)
        kernel = _jitted("fused_gather_matvec", _fused_gather_matvec_impl)
        kernel(
            np.ascontiguousarray(stacked),
            gather,
            np.ascontiguousarray(coefficients),
            out,
        )
        return out
