"""Backend interface for the compiled hot paths.

A :class:`Backend` supplies the handful of dense numeric primitives that
dominate BMF wall-clock once the simulation budget is paid:

* ``gather_product`` -- the design-matrix assembly core of
  :meth:`repro.basis.OrthonormalBasis.design_matrix` (eq. 9): each output
  column is a product of gathered columns of a stacked Hermite table;
* ``fused_gather_matvec`` -- the fused design-matrix -> predict serving
  kernel (assembly and the coefficient dot product in one pass, no
  ``K x M`` intermediate);
* ``matmul_t`` / ``matvec`` -- the Gram contractions of
  :func:`repro.linalg.gram_kernel` / :func:`repro.linalg.solve_diag_plus_gram`;
* ``triangular_solve`` -- the border-update solves of
  :class:`repro.linalg.CholeskyFactor`.

The ``numpy`` backend is the canonical reference: its float64 results
define the bits every cache entry and golden test is keyed on.  Optional
backends (``numba``, ``torch``) may differ bitwise; the differential
conformance suite (``tests/test_backend_conformance.py``) holds every
registered backend to the per-operation tolerances in :data:`TOLERANCES`,
measured against the bitwise-deterministic float64 oracle
(:mod:`repro.backends.oracle`).

Dtype policy: hot paths run in ``float64`` (default) or the opt-in
``float32`` serving mode.  Solvers always *accumulate* in float64 --
``float32`` governs the design/serving data, never the K x K factorization
-- which is why the float32 tolerance rows below stay small.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Backend",
    "ToleranceSpec",
    "TOLERANCES",
    "FLOAT32_SERVING_RTOL",
    "SUPPORTED_DTYPES",
    "resolve_dtype",
]

#: Dtypes the hot paths may run in; everything else is rejected up front.
SUPPORTED_DTYPES: Tuple[np.dtype, ...] = (np.dtype(np.float64), np.dtype(np.float32))

#: Default relative bound for the float32 serving mode: fused float32
#: predictions must stay within this inf-norm-relative distance of the
#: float64 reference (enforced via ``repro.analysis.contracts.check_close``
#: when ``REPRO_CONTRACTS`` is on; see docs/backends.md for the
#: per-testbench table).
FLOAT32_SERVING_RTOL = 1e-4


def resolve_dtype(dtype: Optional[object]) -> np.dtype:
    """Normalize a user-facing dtype argument (``None`` means float64)."""
    if dtype is None:
        return SUPPORTED_DTYPES[0]
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(str(d) for d in SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported hot-path dtype {resolved}; supported: {supported}"
        )
    return resolved


@dataclass(frozen=True)
class ToleranceSpec:
    """Documented per-operation error bounds of one (backend, dtype) pair.

    Each field is an inf-norm relative tolerance against the
    bitwise-deterministic float64 oracle; ``0.0`` means *bitwise equal*.
    ``serving`` additionally bounds the fused-kernel predictions and is the
    contract enforced on the float32 serving path.
    """

    design: float
    gram: float
    solve: float
    refit: float
    serving: float

    def for_operation(self, operation: str) -> float:
        value = getattr(self, operation, None)
        if value is None:
            raise KeyError(f"unknown conformance operation {operation!r}")
        return float(value)


#: The documented tolerance table (docs/backends.md keeps the prose copy;
#: the conformance suite imports this one, so they cannot drift apart).
#:
#: numpy/float64 is bitwise for assembly and for deterministic-mode
#: contractions; its BLAS (non-deterministic-mode) contractions are held to
#: 1e-12 because blocking order may differ from the oracle's einsum.
TOLERANCES: Dict[Tuple[str, str], ToleranceSpec] = {
    ("numpy", "float64"): ToleranceSpec(
        design=0.0, gram=1e-12, solve=1e-9, refit=1e-9, serving=1e-12
    ),
    ("numpy", "float32"): ToleranceSpec(
        design=1e-5, gram=1e-5, solve=1e-3, refit=1e-3, serving=FLOAT32_SERVING_RTOL
    ),
    ("numba", "float64"): ToleranceSpec(
        design=0.0, gram=1e-12, solve=1e-9, refit=1e-9, serving=1e-12
    ),
    ("numba", "float32"): ToleranceSpec(
        design=1e-5, gram=1e-5, solve=1e-3, refit=1e-3, serving=FLOAT32_SERVING_RTOL
    ),
    ("torch", "float64"): ToleranceSpec(
        design=1e-12, gram=1e-10, solve=1e-8, refit=1e-8, serving=1e-10
    ),
    ("torch", "float32"): ToleranceSpec(
        design=1e-5, gram=1e-5, solve=1e-3, refit=1e-3, serving=FLOAT32_SERVING_RTOL
    ),
}


class Backend(ABC):
    """Numeric primitives behind the hot-path seams.

    Implementations must be stateless (a single shared instance serves all
    threads) and must preserve the input dtype: float32 in, float32 out.
    Outputs are fresh C-contiguous arrays the caller owns.
    """

    #: Registry key; also the value recorded in dtype-aware cache keys.
    name: str = "abstract"

    @classmethod
    @abstractmethod
    def available(cls) -> bool:
        """Whether this backend can run here (its extra is importable)."""

    @classmethod
    def unavailable_reason(cls) -> str:
        """Human-readable reason used by skip messages and fallbacks."""
        return f"backend {cls.name!r} is not available on this host"

    # ------------------------------------------------------------------
    # Design-matrix assembly
    # ------------------------------------------------------------------
    @abstractmethod
    def gather_product(self, stacked: np.ndarray, gather: np.ndarray) -> np.ndarray:
        """Assemble design columns as products of gathered table columns.

        ``stacked`` is the ``(K, T)`` Hermite table (column 0 is all ones);
        ``gather`` is ``(C, depth)`` of ``intp`` indices into the table's
        columns, zero-padded so unused factor levels multiply by the ones
        column.  Returns the ``(K, C)`` design matrix in ``stacked``'s
        dtype.
        """

    @abstractmethod
    def fused_gather_matvec(
        self, stacked: np.ndarray, gather: np.ndarray, coefficients: np.ndarray
    ) -> np.ndarray:
        """Fused assembly + prediction: ``gather_product(...) @ coefficients``.

        Must not materialize the full ``(K, C)`` design matrix; returns the
        ``(K,)`` prediction vector in ``stacked``'s dtype.
        """

    # ------------------------------------------------------------------
    # Dense contractions
    # ------------------------------------------------------------------
    @abstractmethod
    def matmul_t(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """``left @ right.T`` (the Gram-product shape used by the kernels)."""

    @abstractmethod
    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """``matrix @ vector``."""

    @abstractmethod
    def triangular_solve(
        self, lower: np.ndarray, rhs: np.ndarray, trans: bool = False
    ) -> np.ndarray:
        """Solve ``L x = rhs`` (or ``L^T x = rhs`` when ``trans``)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
