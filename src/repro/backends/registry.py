"""Backend registration and selection.

Selection order for the process-wide active backend:

1. an explicit :func:`set_backend` / :func:`use_backend` call;
2. the ``REPRO_BACKEND`` environment variable (read when the selection is
   first resolved, and again after :func:`reset_backend_selection`);
3. the ``numpy`` default.

A *known but unavailable* backend (its optional extra is not installed, or
its ``available()`` probe fails) falls back to numpy **gracefully**: the
resolution is counted once as ``backends.fallbacks``, the requested name is
kept visible in :func:`describe_selection`, and everything keeps running on
the canonical backend.  An *unknown* name passed programmatically raises
``ValueError`` -- that is a caller bug, not a deployment condition -- while
an unknown name in the environment variable falls back like an unavailable
one (a typo in a deployment env file must not take serving down).

Every resolution increments ``backends.selections``; resolutions are
cached, so the hot paths pay one lock acquisition per call to
:func:`get_backend`, not a re-resolution.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Type

from ..locks import named_lock
from ..runtime.metrics import metrics
from .base import Backend

__all__ = [
    "register_backend",
    "registered_backends",
    "available_backends",
    "backend_available",
    "backend_unavailable_reason",
    "get_backend",
    "set_backend",
    "use_backend",
    "active_backend_name",
    "describe_selection",
    "reset_backend_selection",
]

#: Environment variable naming the default backend for the process.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_DEFAULT_NAME = "numpy"

_state_lock = named_lock("backends.registry")
_classes: Dict[str, Type[Backend]] = {}
_instances: Dict[str, Backend] = {}
#: Explicitly requested name (set_backend/use_backend); None = env/default.
_requested: List[Optional[str]] = [None]
#: Cached resolution: (requested_name, active Backend) or None when stale.
_resolved: List[Optional[Tuple[Optional[str], Backend]]] = [None]


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator: make ``cls`` selectable under ``cls.name``."""
    name = cls.name
    with _state_lock:
        existing = _classes.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"backend {name!r} is already registered")
        _classes[name] = cls
        _resolved[0] = None
    return cls


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name (available or not), sorted."""
    with _state_lock:
        return tuple(sorted(_classes))


def available_backends() -> Tuple[str, ...]:
    """The subset of registered backends whose extras import here."""
    with _state_lock:
        classes = dict(_classes)
    return tuple(sorted(name for name, cls in classes.items() if cls.available()))


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and currently usable."""
    with _state_lock:
        cls = _classes.get(name)
    return cls is not None and cls.available()


def backend_unavailable_reason(name: str) -> str:
    """Skip-with-reason text for an unusable backend."""
    with _state_lock:
        cls = _classes.get(name)
    if cls is None:
        return f"backend {name!r} is not registered"
    if cls.available():
        return f"backend {name!r} is available"
    return cls.unavailable_reason()


def _instance_locked(name: str) -> Backend:
    instance = _instances.get(name)
    if instance is None:
        instance = _classes[name]()
        _instances[name] = instance
    return instance


def _resolve_locked(requested: Optional[str]) -> Tuple[Backend, bool]:
    """Resolve a request to a usable Backend, falling back gracefully."""
    name = requested
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or _DEFAULT_NAME
    fell_back = False
    cls = _classes.get(name)
    if cls is None or not cls.available():
        fell_back = name != _DEFAULT_NAME
        name = _DEFAULT_NAME
    active = _instance_locked(name)
    _resolved[0] = (requested, active)
    return active, fell_back


def get_backend(name: Optional[str] = None) -> Backend:
    """The active backend, or the named one (with graceful fallback).

    With no argument, returns (and caches) the process-wide selection.
    With ``name``, returns that backend if usable, the numpy fallback if
    registered-but-unavailable (counted as ``backends.fallbacks``), and
    raises ``ValueError`` for an unregistered name.
    """
    fell_back = False
    if name is not None:
        with _state_lock:
            cls = _classes.get(name)
            if cls is None:
                known = ", ".join(sorted(_classes))
                raise ValueError(f"unknown backend {name!r}; registered: {known}")
            if cls.available():
                backend = _instance_locked(name)
            else:
                backend = _instance_locked(_DEFAULT_NAME)
                fell_back = True
    else:
        with _state_lock:
            cached = _resolved[0]
            if cached is not None and cached[0] == _requested[0]:
                return cached[1]
            backend, fell_back = _resolve_locked(_requested[0])
        metrics.increment("backends.selections")
    if fell_back:
        metrics.increment("backends.fallbacks")
    return backend


def set_backend(name: Optional[str]) -> Optional[str]:
    """Select the process-wide backend; returns the previous request.

    ``None`` restores environment/default resolution.  A registered but
    unavailable name is accepted -- resolution falls back to numpy and
    counts ``backends.fallbacks`` -- so deployment configuration can ask
    for an accelerator unconditionally.
    """
    with _state_lock:
        if name is not None and name not in _classes:
            known = ", ".join(sorted(_classes))
            raise ValueError(f"unknown backend {name!r}; registered: {known}")
        previous = _requested[0]
        _requested[0] = name
        _resolved[0] = None
    return previous


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[Backend]:
    """Scoped :func:`set_backend`; restores the previous selection."""
    previous = set_backend(name)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


def active_backend_name() -> str:
    """Name of the backend :func:`get_backend` currently resolves to."""
    return get_backend().name


def describe_selection() -> Dict[str, object]:
    """Diagnostic snapshot: requested vs. active backend, availability."""
    active = get_backend()
    with _state_lock:
        requested = _requested[0]
        names = dict(_classes)
    env = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
    return {
        "requested": requested,
        "environment": env,
        "active": active.name,
        "fell_back": (requested or env or _DEFAULT_NAME) != active.name,
        "registered": {name: cls.available() for name, cls in sorted(names.items())},
    }


def reset_backend_selection() -> None:
    """Drop the cached resolution and any explicit request (test helper)."""
    with _state_lock:
        _requested[0] = None
        _resolved[0] = None
