"""The default (and canonical) numpy backend.

The float64 results of this backend define the reference bits: design
matrices it assembles are bitwise identical to the pre-backend
``OrthonormalBasis`` assembly (the per-column reference loop), and its
contractions are the exact BLAS calls the library made before the backend
seam existed.  The conformance suite's meta-test pins this: the numpy
backend must stay *bitwise* equal to the deterministic oracle on assembly
and deterministic-mode kernels, so cache keys do not need a backend tag
for it.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .base import Backend

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Pure numpy/scipy implementation of the hot-path primitives."""

    name = "numpy"

    # Sample rows are processed in blocks of this size so the per-block
    # gather buffers (2 x block x C doubles) stay inside the L2 cache;
    # larger blocks push the gather traffic out to L3/DRAM and measurably
    # slow the assembly down on memory-bandwidth-bound hosts.
    _ROW_BLOCK = 8

    @classmethod
    def available(cls) -> bool:
        return True

    # ------------------------------------------------------------------
    def gather_product(self, stacked: np.ndarray, gather: np.ndarray) -> np.ndarray:
        num_samples = stacked.shape[0]
        num_cols, depth = gather.shape
        dtype = stacked.dtype
        out = np.empty((num_samples, num_cols), dtype=dtype)
        block = self._ROW_BLOCK
        product = np.empty((block, num_cols), dtype=dtype)
        factor = np.empty((block, num_cols), dtype=dtype)
        first = gather[:, 0]
        middle = [gather[:, level] for level in range(1, depth - 1)]
        last = gather[:, depth - 1] if depth > 1 else None
        for k0 in range(0, num_samples, block):
            k1 = min(k0 + block, num_samples)
            rows = k1 - k0
            sub = stacked[k0:k1]
            if last is None:
                np.take(sub, first, axis=1, out=out[k0:k1])
                continue
            np.take(sub, first, axis=1, out=product[:rows])
            for level_cols in middle:
                np.take(sub, level_cols, axis=1, out=factor[:rows])
                product[:rows] *= factor[:rows]
            np.take(sub, last, axis=1, out=factor[:rows])
            np.multiply(product[:rows], factor[:rows], out=out[k0:k1])
        return out

    def fused_gather_matvec(
        self, stacked: np.ndarray, gather: np.ndarray, coefficients: np.ndarray
    ) -> np.ndarray:
        """Blocked assembly-and-dot: only a ``block x C`` scratch is live."""
        num_samples = stacked.shape[0]
        num_cols, depth = gather.shape
        dtype = stacked.dtype
        out = np.empty(num_samples, dtype=dtype)
        block = self._ROW_BLOCK
        product = np.empty((block, num_cols), dtype=dtype)
        factor = np.empty((block, num_cols), dtype=dtype)
        first = gather[:, 0]
        rest = [gather[:, level] for level in range(1, depth)]
        for k0 in range(0, num_samples, block):
            k1 = min(k0 + block, num_samples)
            rows = k1 - k0
            sub = stacked[k0:k1]
            np.take(sub, first, axis=1, out=product[:rows])
            for level_cols in rest:
                np.take(sub, level_cols, axis=1, out=factor[:rows])
                product[:rows] *= factor[:rows]
            np.dot(product[:rows], coefficients, out=out[k0:k1])
        return out

    # ------------------------------------------------------------------
    def matmul_t(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return left @ right.T

    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        return matrix @ vector

    def triangular_solve(
        self, lower: np.ndarray, rhs: np.ndarray, trans: bool = False
    ) -> np.ndarray:
        if trans:
            return scipy.linalg.solve_triangular(
                lower.T, rhs, lower=False, check_finite=False
            )
        return scipy.linalg.solve_triangular(
            lower, rhs, lower=True, check_finite=False
        )
