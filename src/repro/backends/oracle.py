"""The bitwise-deterministic float64 oracle for backend conformance.

Independent reference implementations of every operation the backends
accelerate, written for auditability rather than speed: a per-column
Python loop for design-matrix assembly, blocking-stable ``einsum``
contractions (the PR-3 deterministic mode) for the kernels, and the
deterministic :class:`~repro.bmf.KernelMapSolver` for MAP solves.  The
differential conformance suite (``tests/test_backend_conformance.py``)
holds every registered backend x dtype to the
:data:`repro.backends.TOLERANCES` bounds against these functions, and pins
the numpy backend *bitwise* to them on assembly and deterministic-mode
kernels.

Everything here runs in float64 on the numpy backend regardless of the
process-wide selection (``use_backend("numpy")`` guards each entry point),
so the oracle cannot be perturbed by the very backend it is judging.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .registry import use_backend

__all__ = [
    "oracle_design_matrix",
    "oracle_gram_kernel",
    "oracle_map_solve",
    "oracle_predict",
]


def oracle_design_matrix(basis, x: np.ndarray) -> np.ndarray:
    """Reference assembly of eq. (9): one explicit product per column.

    Bitwise equal to the numpy backend's blocked gather-product assembly
    (both multiply factors in multi-index order; ``1.0 * v`` is exact).
    """
    from ..basis.hermite import hermite_orthonormal_all

    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[np.newaxis, :]
    tables = {
        var: hermite_orthonormal_all(basis.max_degree, x[:, var])
        for var in range(basis.num_vars)
    }
    out = np.empty((x.shape[0], basis.size), dtype=np.float64)
    for column, index in enumerate(basis.indices):
        value = np.ones(x.shape[0], dtype=np.float64)
        for var, degree in index:
            value = value * tables[var][degree]
        out[:, column] = value
    return out


def oracle_gram_kernel(
    design: np.ndarray, scale_sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Deterministic ``G diag(s^2) G^T``: unblocked einsum, lower-mirrored."""
    design = np.asarray(design, dtype=np.float64)
    scaled = design if scale_sq is None else design * scale_sq
    kernel = np.einsum("im,jm->ij", scaled, design, optimize=False)
    lower = np.tril(kernel)
    return lower + np.tril(kernel, -1).T


def oracle_map_solve(
    design: np.ndarray,
    target: np.ndarray,
    prior,
    eta: float,
    missing_scale: Optional[float] = None,
) -> np.ndarray:
    """Deterministic-mode dual MAP solve (the PR-3 differential oracle)."""
    from ..bmf.map_estimation import KernelMapSolver

    with use_backend("numpy"):
        solver = KernelMapSolver(
            np.asarray(design, dtype=np.float64),
            np.asarray(target, dtype=np.float64),
            prior,
            missing_scale,
            deterministic=True,
        )
        return solver.solve(eta)


def oracle_predict(basis, coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Reference prediction: oracle assembly + blocking-stable contraction."""
    design = oracle_design_matrix(basis, x)
    coefficients = np.asarray(coefficients, dtype=np.float64)
    return np.einsum("km,m->k", design, coefficients, optimize=False)
