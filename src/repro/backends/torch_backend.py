"""Optional torch backend (``pip install repro[torch]``).

Runs every primitive through torch tensor kernels (CPU by default; set
``REPRO_TORCH_DEVICE=cuda`` to target a GPU).  Unlike the numba backend,
the dense contractions do *not* delegate to numpy -- torch's own GEMM /
triangular-solve kernels are exercised end to end, which is exactly what
the differential conformance suite is for: torch results may differ
bitwise from the canonical numpy bits (different BLAS, different reduction
order), so the registry tags this backend's design-matrix cache entries
with its name and the conformance tolerances for ``torch`` are finite
rather than zero.

When torch is not importable this module still imports cleanly;
:meth:`TorchBackend.available` reports ``False`` and the registry falls
back to numpy (counted as ``backends.fallbacks``).
"""

from __future__ import annotations

import os

import numpy as np

from .base import Backend

try:
    import torch
except ImportError:  # the extra is optional; the registry gates on available()
    torch = None

__all__ = ["TorchBackend"]


def _tensor(array: np.ndarray):
    """Wrap an ndarray, copying only when torch cannot share the buffer.

    Cached design matrices are served read-only; ``torch.from_numpy``
    refuses non-writeable buffers, so those are copied.
    """
    if not array.flags.writeable or not array.flags.c_contiguous:
        array = np.ascontiguousarray(array).copy()
    tensor = torch.from_numpy(array)
    device = os.environ.get("REPRO_TORCH_DEVICE", "").strip()
    if device:
        tensor = tensor.to(device)
    return tensor


def _numpy(tensor) -> np.ndarray:
    return np.ascontiguousarray(tensor.cpu().numpy())


class TorchBackend(Backend):
    """Torch tensor kernels for every hot-path primitive."""

    name = "torch"

    @classmethod
    def available(cls) -> bool:
        return torch is not None

    @classmethod
    def unavailable_reason(cls) -> str:
        return "torch is not installed (pip install repro[torch])"

    # ------------------------------------------------------------------
    def _assembled(self, stacked: np.ndarray, gather: np.ndarray):
        table = _tensor(stacked)
        product = table[:, gather[:, 0]].clone()
        for level in range(1, gather.shape[1]):
            product *= table[:, gather[:, level]]
        return product

    def gather_product(self, stacked: np.ndarray, gather: np.ndarray) -> np.ndarray:
        return _numpy(self._assembled(stacked, gather))

    def fused_gather_matvec(
        self, stacked: np.ndarray, gather: np.ndarray, coefficients: np.ndarray
    ) -> np.ndarray:
        # One level-sized temporary at a time; the (K, C) product block is
        # consumed by the matvec without a numpy round trip.
        product = self._assembled(stacked, gather)
        return _numpy(torch.mv(product, _tensor(coefficients)))

    # ------------------------------------------------------------------
    def matmul_t(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return _numpy(torch.matmul(_tensor(left), _tensor(right).T))

    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        return _numpy(torch.mv(_tensor(matrix), _tensor(vector)))

    def triangular_solve(
        self, lower: np.ndarray, rhs: np.ndarray, trans: bool = False
    ) -> np.ndarray:
        matrix = _tensor(lower)
        if trans:
            matrix = matrix.T
        target = _tensor(rhs)
        squeeze = target.dim() == 1
        if squeeze:
            target = target.unsqueeze(1)
        solved = torch.linalg.solve_triangular(
            matrix, target, upper=bool(trans), left=True
        )
        if squeeze:
            solved = solved.squeeze(1)
        return _numpy(solved)
