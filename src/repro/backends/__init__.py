"""Multi-backend compiled hot paths.

``repro.backends`` is the registry-based seam the numeric hot paths
dispatch through: design-matrix gather/product assembly and the fused
design-matrix -> predict serving kernel
(:meth:`repro.basis.OrthonormalBasis.design_matrix` /
:meth:`~repro.basis.OrthonormalBasis.fused_predict`), the Gram kernels
(:func:`repro.linalg.gram_kernel` / :func:`~repro.linalg.extend_gram_kernel`),
the Woodbury solve (:func:`repro.linalg.solve_diag_plus_gram`), and the
bordered-Cholesky updates (:class:`repro.linalg.CholeskyFactor`).

Three backends ship:

* ``numpy`` (default, always available) -- the canonical bits;
* ``numba`` (optional extra) -- parallel-JIT assembly and fused kernels;
* ``torch`` (optional extra) -- tensor kernels end to end, CPU or GPU.

Select with ``REPRO_BACKEND=<name>`` in the environment, process-wide via
:func:`set_backend`, or scoped via :func:`use_backend`.  A requested
backend whose extra is missing falls back to numpy gracefully (counted as
``backends.fallbacks``).  Every backend is held to the documented
:data:`TOLERANCES` against the bitwise-deterministic float64 oracle
(:mod:`repro.backends.oracle`) by the differential conformance suite; see
``docs/backends.md`` for the selection/fallback runbook and the tolerance
table, including the opt-in float32 serving mode.
"""

from .base import (
    FLOAT32_SERVING_RTOL,
    SUPPORTED_DTYPES,
    TOLERANCES,
    Backend,
    ToleranceSpec,
    resolve_dtype,
)
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend
from .registry import (
    BACKEND_ENV_VAR,
    active_backend_name,
    available_backends,
    backend_available,
    backend_unavailable_reason,
    describe_selection,
    get_backend,
    register_backend,
    registered_backends,
    reset_backend_selection,
    set_backend,
    use_backend,
)
from .torch_backend import TorchBackend

register_backend(NumpyBackend)
register_backend(NumbaBackend)
register_backend(TorchBackend)

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "FLOAT32_SERVING_RTOL",
    "NumbaBackend",
    "NumpyBackend",
    "SUPPORTED_DTYPES",
    "TOLERANCES",
    "TorchBackend",
    "ToleranceSpec",
    "active_backend_name",
    "available_backends",
    "backend_available",
    "backend_unavailable_reason",
    "describe_selection",
    "get_backend",
    "register_backend",
    "registered_backends",
    "reset_backend_selection",
    "resolve_dtype",
    "set_backend",
    "use_backend",
]
