"""Process-variation variable space.

In the paper's setting (Section II-A), the process design kit exposes the
device-level process variations as a vector of independent standard-normal
random variables ``x = [x_1 ... x_R]``.  :class:`ProcessSpace` is that
vector, with bookkeeping for what each variable physically is:

* ``interdie`` -- chip-global (inter-die) parameter shifts shared by all
  devices (e.g. global threshold-voltage or oxide-thickness drift);
* ``mismatch`` -- per-device local mismatch components (the paper notes a
  commercial 32 nm SOI process uses ~40 such variables *per transistor*);
* ``parasitic`` -- post-layout-only variables modeling the variation of
  extracted layout parasitics (Section IV-B's missing-prior scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["VariationVariable", "ProcessSpace", "VariationKind"]

VariationKind = str
_KINDS = ("interdie", "mismatch", "parasitic")


@dataclass(frozen=True)
class VariationVariable:
    """One independent standard-normal process-variation variable.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"ro.inv3.nmos.vth_m2"``.
    kind:
        One of ``"interdie"``, ``"mismatch"``, ``"parasitic"``.
    device:
        Owning device name for mismatch variables (None for global ones).
    """

    name: str
    kind: VariationKind = "mismatch"
    device: Optional[str] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")


class ProcessSpace:
    """An ordered collection of independent N(0, 1) variation variables.

    The order defines the meaning of the columns of every sample matrix
    ``X`` of shape ``(K, R)`` flowing through the package.
    """

    def __init__(self, variables: Sequence[VariationVariable] = ()):
        self._variables: List[VariationVariable] = []
        self._index: Dict[str, int] = {}
        for var in variables:
            self.add(var)

    # ------------------------------------------------------------------
    def add(self, variable: VariationVariable) -> int:
        """Append a variable; returns its column index."""
        if variable.name in self._index:
            raise ValueError(f"duplicate variable name {variable.name!r}")
        self._index[variable.name] = len(self._variables)
        self._variables.append(variable)
        return len(self._variables) - 1

    def add_block(
        self,
        prefix: str,
        count: int,
        kind: VariationKind = "mismatch",
        device: Optional[str] = None,
    ) -> range:
        """Append ``count`` variables named ``{prefix}{i}``; returns their indices."""
        start = len(self._variables)
        for i in range(count):
            self.add(VariationVariable(f"{prefix}{i}", kind, device))
        return range(start, start + count)

    def extended(self, extra: Sequence[VariationVariable]) -> "ProcessSpace":
        """New space with additional variables appended (schematic -> layout)."""
        return ProcessSpace(list(self._variables) + list(extra))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of variables ``R``."""
        return len(self._variables)

    def __len__(self) -> int:
        return self.size

    @property
    def variables(self) -> Tuple[VariationVariable, ...]:
        return tuple(self._variables)

    def index_of(self, name: str) -> int:
        """Column index of a variable by name."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no variation variable named {name!r}") from None

    def indices_of_kind(self, kind: VariationKind) -> np.ndarray:
        """Column indices of all variables of the given kind."""
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        return np.array(
            [i for i, v in enumerate(self._variables) if v.kind == kind],
            dtype=int,
        )

    def indices_of_device(self, device: str) -> np.ndarray:
        """Column indices of all variables attached to a device."""
        return np.array(
            [i for i, v in enumerate(self._variables) if v.device == device],
            dtype=int,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = {k: len(self.indices_of_kind(k)) for k in _KINDS}
        return f"ProcessSpace(size={self.size}, {counts})"

    # ------------------------------------------------------------------
    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` i.i.d. standard-normal samples, shape ``(count, R)``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return rng.standard_normal((count, self.size))
