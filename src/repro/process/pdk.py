"""A synthetic 32 nm-SOI-like process kit.

The real experiments of the paper run on a commercial 32 nm CMOS SOI PDK in
which the mismatch of a single transistor is modeled by ~40 independent
random variables.  This module provides the equivalent synthetic object:
:class:`ProcessKit` owns

* the number of raw mismatch variables per device (``params_per_device``)
  and deterministic unit-norm *projection* vectors that map those raw
  variables onto physical parameter deltas (threshold voltage, current
  factor, capacitance, leakage) -- mirroring how PDK mismatch models expand
  a transistor's variability over many principal components;
* a block of chip-global inter-die variables with their own projections;
* the 1-sigma magnitudes of each physical delta.

Everything is deterministic given ``seed`` so that "the same PDK" is
reproducible across schematic and post-layout stages and across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["ProcessKit", "PHYSICAL_DELTAS"]

# Physical parameter deltas a device's raw mismatch variables project onto.
PHYSICAL_DELTAS = ("vth", "beta", "cap", "leak")


@dataclass
class ProcessKit:
    """Synthetic process kit: variation magnitudes and projections.

    Parameters
    ----------
    params_per_device:
        Raw independent mismatch variables per transistor (the paper's
        commercial kit uses ~40; smaller values keep test problems light).
    interdie_params:
        Number of chip-global variation variables.
    sigma_vth_mm / sigma_beta_mm / sigma_cap_mm / sigma_leak_mm:
        1-sigma mismatch magnitudes for a unit-area device: threshold
        voltage in volts, the rest as relative fractions.  Mismatch scales
        with ``1/sqrt(area)`` (Pelgrom's law).
    sigma_vth_g / sigma_beta_g / sigma_cap_g / sigma_leak_g:
        1-sigma inter-die magnitudes (same units).
    supply_voltage:
        Nominal VDD of the process in volts.
    temperature:
        Nominal junction temperature in kelvin (enters leakage/noise).
    seed:
        Seed for the deterministic projection directions.
    """

    params_per_device: int = 8
    interdie_params: int = 12
    sigma_vth_mm: float = 0.018
    sigma_beta_mm: float = 0.045
    sigma_cap_mm: float = 0.030
    sigma_leak_mm: float = 0.20
    sigma_vth_g: float = 0.010
    sigma_beta_g: float = 0.040
    sigma_cap_g: float = 0.035
    sigma_leak_g: float = 0.15
    supply_voltage: float = 0.9
    temperature: float = 300.0
    seed: int = 32

    _mismatch_projections: Dict[str, np.ndarray] = field(
        init=False, repr=False, default_factory=dict
    )
    _interdie_projections: Dict[str, np.ndarray] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self):
        minimum = len(PHYSICAL_DELTAS)
        if self.params_per_device < minimum:
            raise ValueError(
                f"params_per_device must be >= {minimum} (one independent "
                f"direction per physical delta), got {self.params_per_device}"
            )
        if self.interdie_params < minimum:
            raise ValueError(
                f"interdie_params must be >= {minimum}, got "
                f"{self.interdie_params}"
            )
        rng = np.random.default_rng(self.seed)
        mismatch = _orthonormal_directions(rng, self.params_per_device, minimum)
        interdie = _orthonormal_directions(rng, self.interdie_params, minimum)
        for i, delta in enumerate(PHYSICAL_DELTAS):
            self._mismatch_projections[delta] = mismatch[:, i]
            self._interdie_projections[delta] = interdie[:, i]

    # ------------------------------------------------------------------
    def mismatch_projection(self, delta: str) -> np.ndarray:
        """Unit-norm projection of raw per-device variables onto ``delta``.

        A device's physical delta is ``sigma * (raw_block @ projection)``;
        because the projection has unit norm and the raw variables are
        independent N(0,1), the physical delta is exactly N(0, sigma^2).
        """
        return self._mismatch_projections[_check_delta(delta)]

    def interdie_projection(self, delta: str) -> np.ndarray:
        """Unit-norm projection of the global variables onto ``delta``."""
        return self._interdie_projections[_check_delta(delta)]

    def mismatch_sigma(self, delta: str) -> float:
        """1-sigma mismatch magnitude of ``delta`` for a unit-area device."""
        return {
            "vth": self.sigma_vth_mm,
            "beta": self.sigma_beta_mm,
            "cap": self.sigma_cap_mm,
            "leak": self.sigma_leak_mm,
        }[_check_delta(delta)]

    def interdie_sigma(self, delta: str) -> float:
        """1-sigma inter-die magnitude of ``delta``."""
        return {
            "vth": self.sigma_vth_g,
            "beta": self.sigma_beta_g,
            "cap": self.sigma_cap_g,
            "leak": self.sigma_leak_g,
        }[_check_delta(delta)]

    @property
    def thermal_voltage(self) -> float:
        """kT/q in volts at the kit's nominal temperature."""
        return 8.617333262e-5 * self.temperature


def _check_delta(delta: str) -> str:
    if delta not in PHYSICAL_DELTAS:
        raise ValueError(f"delta must be one of {PHYSICAL_DELTAS}, got {delta!r}")
    return delta


def _orthonormal_directions(
    rng: np.random.Generator, size: int, count: int
) -> np.ndarray:
    """``count`` deterministic orthonormal directions in ``size`` dimensions.

    Orthogonality mirrors how PDK mismatch models expand a device's
    variability over independent principal components: pushing the raw
    variables along the "threshold voltage" direction must not leak into
    the "capacitance" delta.  Returned as the ``(size, count)`` Q factor of
    a seeded random matrix.
    """
    matrix = rng.standard_normal((size, count))
    q, r = np.linalg.qr(matrix)
    # Fix the sign convention so the decomposition is unique/deterministic.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs
