"""Process-variation substrate: variable spaces and the synthetic PDK."""

from .pdk import PHYSICAL_DELTAS, ProcessKit
from .variables import ProcessSpace, VariationKind, VariationVariable

__all__ = [
    "PHYSICAL_DELTAS",
    "ProcessKit",
    "ProcessSpace",
    "VariationKind",
    "VariationVariable",
]
