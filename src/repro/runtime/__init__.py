"""Performance runtime layer: instrumentation and caching.

Shared by the basis, Monte Carlo, BMF, and experiments layers:

* :mod:`repro.runtime.metrics` -- process-global counters and timers that
  the experiment runners attach to their reports;
* :mod:`repro.runtime.cache` -- a bounded, value-keyed cache of assembled
  design matrices.
"""

from .cache import (
    DesignMatrixCache,
    design_cache,
    disable_design_cache,
    fingerprint_array,
    set_design_cache,
)
from .metrics import (
    MetricsRegistry,
    TimerStat,
    format_snapshot,
    metrics,
    snapshot_delta,
)

__all__ = [
    "DesignMatrixCache",
    "MetricsRegistry",
    "TimerStat",
    "design_cache",
    "disable_design_cache",
    "fingerprint_array",
    "format_snapshot",
    "metrics",
    "set_design_cache",
    "snapshot_delta",
]
