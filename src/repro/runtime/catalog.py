"""Central catalog of every metric name the library may emit.

Two drift directions are gated:

* **code -> catalog**: the REP013 lint rule requires every
  ``metrics.increment("...")`` / ``metrics.timer("...")`` string literal
  in ``src`` to be declared here (f-string names must start with a
  :data:`DYNAMIC_PREFIXES` entry), so a new metric cannot ship
  undeclared;
* **catalog -> docs**: ``python -m repro.runtime.catalog docs`` (run in
  CI) requires every declared name to appear back-ticked somewhere under
  ``docs/``, so the docs metric tables cannot silently rot.

This module is pure data plus stdlib — it must import nothing from the
rest of :mod:`repro`, because the lint rules late-import it while the
package is still initialising.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "METRICS",
    "TIMERS",
    "DYNAMIC_PREFIXES",
    "all_names",
    "is_declared",
    "undeclared",
    "missing_from_docs",
    "main",
]

#: Counter names -> one-line description (what one increment means).
METRICS: Dict[str, str] = {
    "backends.fallbacks": "backend resolutions that fell back to numpy",
    "backends.float32_bound_checks": "float32 serving batches checked against the float64 bound",
    "backends.float32_serves": "serving batches evaluated in float32",
    "backends.fused_predicts": "predictions served through the fused design-predict kernel",
    "backends.selections": "process-wide backend resolutions performed",
    "bmf.cv_evaluations": "candidate models scored during BMF cross-validation",
    "design_cache.corrupt_evictions": "cached design matrices evicted by contract violation",
    "design_cache.evictions": "design-matrix cache LRU evictions",
    "design_cache.hits": "design-matrix cache hits",
    "design_cache.misses": "design-matrix cache misses",
    "design_matrix.calls": "design-matrix assembly calls",
    "design_matrix.cells": "design-matrix cells assembled",
    "faults.delays": "injected latency delays applied at failpoints",
    "faults.hits": "failpoint evaluations while a plan was armed",
    "faults.injected": "faults actually injected (errors plus delays)",
    "loadgen.answered": "load-harness requests answered successfully",
    "loadgen.failed": "load-harness requests that errored",
    "loadgen.quota_rejected": "load-harness requests rejected by tenant quota",
    "loadgen.requests": "load-harness requests issued",
    "loadgen.shed": "load-harness requests shed by overload protection",
    "lock.acquires": "tracked lock acquisitions observed by the watchdog",
    "lock.long_holds": "tracked lock holds exceeding the long-hold threshold",
    "lock.order_cycles": "cycles present in the observed lock-order graph",
    "lock.order_edges": "distinct held->acquired edges observed by the watchdog",
    "lock.order_inversions": "lock pairs observed acquired in both orders",
    "montecarlo.chunks": "Monte Carlo worker chunks executed",
    "montecarlo.samples": "Monte Carlo samples simulated",
    "sequential.failed_refits": "sequential-BMF refits that failed and were rolled back",
    "sequential.rearms": "sequential-BMF warm rearms from persisted state",
    "serving.batch_size": "summed batch sizes (with serving.batches gives the mean)",
    "serving.batches": "micro-batches flushed by the prediction engine",
    "serving.breaker.closed": "circuit breakers that closed after recovery",
    "serving.breaker.half_opened": "circuit breakers that entered half-open probing",
    "serving.breaker.opened": "circuit breakers tripped open by failures",
    "serving.breaker.rejected": "requests rejected by an open circuit breaker",
    "serving.brownout.entered": "brownout activations (health score crossed below healthy)",
    "serving.brownout.exited": "brownout deactivations (health score recovered)",
    "serving.brownout.shed": "requests shed by brownout priority admission",
    "serving.cancelled": "queued requests dropped because their future was cancelled",
    "serving.degraded": "requests answered from the last-good degraded path",
    "serving.degraded_rollbacks": "degraded answers later superseded by a rollback",
    "serving.expired": "requests whose deadline expired before evaluation",
    "serving.failed": "requests that failed evaluation",
    "serving.health.degraded": "readiness probes that observed a not-ready transition",
    "serving.health.recovered": "readiness probes that observed a ready-again transition",
    "serving.hedge.attempts": "hedged backup attempts dispatched to warm replicas",
    "serving.hedge.budget_denied": "hedge opportunities denied by the token budget",
    "serving.hedge.cancelled": "hedge losers cancelled before evaluation",
    "serving.hedge.primary_wins": "hedged requests where the primary still answered first",
    "serving.hedge.wins": "hedged requests won by the backup replica",
    "serving.limit.decreases": "adaptive-limit multiplicative decreases",
    "serving.limit.increases": "adaptive-limit additive increases",
    "serving.marked_bad": "model versions marked bad",
    "serving.publish_persist_skipped": "publishes that skipped store persistence",
    "serving.publishes": "model versions published to a registry",
    "serving.rejected_publishes": "publishes rejected by registry validation",
    "serving.requests": "prediction requests accepted by the engine",
    "serving.restored_versions": "model versions restored from the store",
    "serving.retries": "evaluation retries performed by the retry policy",
    "serving.rollbacks": "registry rollbacks to an earlier version",
    "serving.shard.backfills": "replica shards backfilled from the journal",
    "serving.shard.failover_routes": "requests routed to a warm replica after failover",
    "serving.shard.failovers": "shard failovers triggered by a kill",
    "serving.shard.publishes": "publishes routed through the shard router",
    "serving.shard.rebalanced_keys": "keys rerouted during shard rebalancing",
    "serving.shard.replica_applied": "journal entries applied to warm replicas",
    "serving.shard.replica_corrupt": "journal entries skipped by replicas as corrupt",
    "serving.shard.replica_skipped": "journal entries skipped by replica filters",
    "serving.shard.follower_boundary": "follower polls that crossed a compaction boundary",
    "serving.shard.rerouted": "requests rerouted away from a dead shard",
    "serving.shard.restart_restored": "versions restored by restarted shards",
    "serving.shard.restarts": "shard restarts performed (rolling-restart drill)",
    "serving.shard.routed": "requests routed to their home shard",
    "serving.shed.expired": "queued requests shed because their deadline passed",
    "serving.shed.rejected": "requests shed at admission by the bounded queue",
    "serving.shutdown_drops": "queued requests dropped during engine shutdown",
    "store.compaction.dropped": "superseded records dropped by compaction",
    "store.compaction.kept": "survivor records carried into a new generation",
    "store.compaction.quarantined": "corrupt survivors quarantined during compaction",
    "store.compaction.retired": "retired generation directories removed",
    "store.compaction.runs": "generational compactions completed",
    "store.corrupt_quarantined": "corrupt store records moved to quarantine",
    "store.journal_torn": "torn journal tails detected during recovery scans",
    "store.journal_write_failures": "journal appends that failed",
    "store.load_failures": "store record loads that failed",
    "store.loads": "store records loaded",
    "store.missing_records": "journalled records missing from the store",
    "store.pitr.recoveries": "point-in-time recoveries performed",
    "store.recovered_records": "records recovered by a store scan",
    "store.recovered_unjournaled": "records recovered that never reached the journal",
    "store.torn_writes": "torn (partial) record writes detected",
    "store.write_failures": "store record writes that failed",
    "store.writes": "store records written",
    "woodbury.fallbacks": "incremental refits that fell back to full refits",
    "woodbury.incremental_refits": "incremental Woodbury refits performed",
}

#: Timer names -> one-line description (what one sample times).
TIMERS: Dict[str, str] = {
    "bmf.cross_validation": "one BMF cross-validation sweep",
    "design_matrix": "one design-matrix assembly",
    "montecarlo.simulate": "one Monte Carlo simulation run",
    "sequential.rearm": "one sequential-BMF warm rearm",
    "sequential.refit": "one sequential-BMF refit",
    "serving.evaluate": "one engine model evaluation",
    "store.compaction": "one generational store compaction",
}

#: Prefixes under which dynamically-formatted metric names are allowed
#: (e.g. ``f"faults.injected.{name}"`` — one counter per failpoint).
DYNAMIC_PREFIXES: Tuple[str, ...] = ("faults.injected.",)


def all_names() -> Tuple[str, ...]:
    """Every declared static metric name, sorted."""
    return tuple(sorted(set(METRICS) | set(TIMERS)))


def is_declared(name: str) -> bool:
    """True if *name* is a declared counter/timer or under a dynamic prefix."""
    if name in METRICS or name in TIMERS:
        return True
    return any(name.startswith(prefix) for prefix in DYNAMIC_PREFIXES)


def undeclared(names: Iterable[str]) -> List[str]:
    """The subset of *names* the catalog does not declare, sorted."""
    return sorted({name for name in names if not is_declared(name)})


def missing_from_docs(doc_text: str) -> List[str]:
    """Declared names that never appear back-ticked in *doc_text*, sorted."""
    return [name for name in all_names() if f"`{name}`" not in doc_text]


def _docs_text(doc_dir: Path) -> str:
    return "\n".join(
        path.read_text(encoding="utf-8") for path in sorted(doc_dir.rglob("*.md"))
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI gate: ``python -m repro.runtime.catalog docs [DOC_DIR]``.

    Exits 1 listing any catalog entry absent from the docs metric tables.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] != "docs":
        print("usage: python -m repro.runtime.catalog docs [DOC_DIR]", file=sys.stderr)
        return 2
    doc_dir = Path(args[1]) if len(args) > 1 else Path("docs")
    if not doc_dir.is_dir():
        print(f"docs directory not found: {doc_dir}", file=sys.stderr)
        return 2
    missing = missing_from_docs(_docs_text(doc_dir))
    if missing:
        print(f"{len(missing)} metric(s) declared in the catalog but absent from docs:")
        for name in missing:
            print(f"  {name}")
        return 1
    print(f"all {len(all_names())} declared metrics documented under {doc_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
