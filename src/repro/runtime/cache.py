"""Design-matrix cache keyed on basis identity + sample fingerprint.

Assembling the design matrix **G** (eq. 9) is the single most repeated
computation in the experiment harness: the cost-comparison runner assembles
it once per metric over the *same* Monte Carlo pool, ``BmfRegressor.fit``
needs it both for fitting and for posterior uncertainty, and the
cross-validation sweep re-enters through the same samples.  This module
memoizes those assemblies.

Keys are value-based, not identity-based: a basis is identified by a digest
of its multi-index set (so two equal bases built independently share
entries) and a sample array by a digest of its bytes.  Cached matrices are
returned with ``writeable=False`` so an accidental in-place edit raises
instead of silently corrupting every later hit.

The process-global cache is enabled by default and bounded both by entry
count and total bytes; tiny evaluations (single-sample ``predict`` calls)
bypass it entirely.  Hits/misses/evictions are reported through
:mod:`repro.runtime.metrics`.
"""

from __future__ import annotations

import hashlib
import threading
from ..locks import named_lock
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

import numpy as np

from ..analysis.contracts import ContractViolationError, check_array
from ..faults import InjectedFault, failpoint
from .metrics import metrics

#: Fires on every cache hit, before the entry is re-validated; an armed
#: error plan here models a poisoned cache entry (the cache self-heals by
#: evicting and recomputing -- see get_or_compute).
_FP_CACHE_LOOKUP = failpoint("cache.lookup")

__all__ = [
    "DesignMatrixCache",
    "design_key",
    "fingerprint_array",
    "design_cache",
    "set_design_cache",
    "disable_design_cache",
]

CacheKey = Tuple[Hashable, ...]

#: The canonical backend whose float64 results define the reference bits;
#: entries computed by it need no backend tag in their key.
_CANONICAL_BACKEND = "numpy"


def fingerprint_array(x: np.ndarray) -> Tuple[Hashable, ...]:
    """Value fingerprint of a float array: shape plus a content digest."""
    x = np.ascontiguousarray(x)
    digest = hashlib.blake2b(x.view(np.uint8), digest_size=16).hexdigest()
    return (x.shape, digest)


def design_key(
    basis_token: str,
    x: np.ndarray,
    signature: Optional[Tuple[int, ...]],
    dtype: "np.dtype" = np.dtype(np.float64),
    backend: str = _CANONICAL_BACKEND,
) -> CacheKey:
    """Cache key for one assembled design matrix.

    Value identity (basis digest + sample fingerprint + column signature)
    is joined by *numeric* identity: the result dtype always participates
    -- a float32 and a float64 assembly of the same samples are different
    arrays and must never collide or cross-serve -- and the backend name
    participates whenever the active backend is not the canonical numpy
    one, whose bits non-canonical backends are not required to reproduce
    exactly.
    """
    key: CacheKey = (basis_token, fingerprint_array(x), signature, np.dtype(dtype).str)
    if backend != _CANONICAL_BACKEND:
        key = key + (backend,)
    return key


class DesignMatrixCache:
    """Bounded LRU cache of assembled design matrices.

    Parameters
    ----------
    max_entries:
        Maximum number of cached matrices.
    max_bytes:
        Total byte budget across entries; matrices larger than the whole
        budget are computed but never stored.
    min_result_cells:
        Results with fewer than this many cells (``K * len(columns)``) are
        not cached -- hashing overhead would exceed the assembly cost.
    """

    def __init__(
        self,
        max_entries: int = 32,
        max_bytes: int = 256 * 1024 * 1024,
        min_result_cells: int = 4096,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.min_result_cells = int(min_result_cells)
        self._lock = named_lock("runtime.design_cache")
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held."""
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        """Consistent snapshot of counters and occupancy, read under the lock.

        Prefer this over reading ``hits``/``misses``/``evictions`` directly
        from another thread: the attributes are mutated under the lock, so
        only a locked read sees a mutually consistent set.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }

    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        key: CacheKey,
        compute: Callable[[], np.ndarray],
        dtype: Optional["np.dtype"] = None,
    ) -> np.ndarray:
        """Return the cached matrix for ``key``, computing it on a miss.

        The stored (and returned) array is marked read-only; callers that
        need to mutate must copy.  ``dtype``, when given, is re-validated
        on every hit alongside the read-only flag -- a dtype-keyed entry
        must serve exactly the dtype its key promises.

        A hit entry that fails re-validation (its read-only contract was
        broken, or the ``cache.lookup`` failpoint injects a corruption
        fault) is *self-healing*: the poisoned entry is evicted, counted
        as ``design_cache.corrupt_evictions``, and the matrix is
        recomputed instead of the corruption propagating to the caller.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is not None:
            metrics.increment("design_cache.hits")
            try:
                _FP_CACHE_LOOKUP.hit()
                return check_array(
                    cached,
                    name="cached design matrix",
                    dtype=dtype,
                    writeable=False,
                    c_contiguous=True,
                )
            except (ContractViolationError, InjectedFault):
                metrics.increment("design_cache.corrupt_evictions")
                with self._lock:
                    entry = self._entries.pop(key, None)
                    if entry is not None:
                        self._bytes -= entry.nbytes
                        self.evictions += 1

        result = compute()
        with self._lock:
            self.misses += 1
        metrics.increment("design_cache.misses")
        if result.size < self.min_result_cells or result.nbytes > self.max_bytes:
            return result
        result = np.ascontiguousarray(result)
        result.flags.writeable = False
        with self._lock:
            if key not in self._entries:
                self._entries[key] = result
                self._bytes += result.nbytes
                self._evict_locked()
        return result

    def _evict_locked(self) -> None:
        while self._entries and (
            len(self._entries) > self.max_entries or self._bytes > self.max_bytes
        ):
            _, dropped = self._entries.popitem(last=False)
            self._bytes -= dropped.nbytes
            self.evictions += 1
            metrics.increment("design_cache.evictions")


_default_cache: Optional[DesignMatrixCache] = DesignMatrixCache()
_cache_lock = named_lock("runtime.design_cache.global")


def design_cache() -> Optional[DesignMatrixCache]:
    """The process-global design-matrix cache (``None`` when disabled)."""
    with _cache_lock:
        return _default_cache


def set_design_cache(
    cache: Optional[DesignMatrixCache],
) -> Optional[DesignMatrixCache]:
    """Install a new global cache (or ``None`` to disable); returns the old."""
    global _default_cache
    with _cache_lock:
        previous = _default_cache
        _default_cache = cache
        return previous


def disable_design_cache() -> Optional[DesignMatrixCache]:
    """Convenience: turn global caching off; returns the removed cache."""
    return set_design_cache(None)
