"""Lightweight runtime instrumentation: counters and wall-clock timers.

The performance layer (vectorized design matrices, the design-matrix cache,
chunked Monte Carlo) reports what it did through a process-global
:class:`MetricsRegistry`.  Experiment runners snapshot the registry before
and after a run and attach the delta to their reports, so every regenerated
table/figure records how much work (and how many cache hits) it cost.

The registry is deliberately tiny: integer counters and accumulated
wall-clock timers behind one lock, cheap enough to leave enabled
everywhere.  Names are dotted strings (``"design_matrix.cells"``,
``"design_cache.hits"``, ``"montecarlo.samples"``).
"""

from __future__ import annotations

import threading
from ..locks import named_lock
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

__all__ = [
    "TimerStat",
    "MetricsRegistry",
    "counters_delta",
    "metrics",
    "snapshot_delta",
    "format_snapshot",
]


@dataclass
class TimerStat:
    """Accumulated wall-clock of one named timer."""

    calls: int = 0
    seconds: float = 0.0


class MetricsRegistry:
    """Thread-safe named counters and timers."""

    def __init__(self) -> None:
        self._lock = named_lock("runtime.metrics")
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStat] = {}

    # -- counters ------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def count(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- timers --------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall-clock into the named timer."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                stat = self._timers.setdefault(name, TimerStat())
                stat.calls += 1
                stat.seconds += elapsed

    def timer_stat(self, name: str) -> TimerStat:
        """Copy of the named timer's accumulated state."""
        with self._lock:
            stat = self._timers.get(name, TimerStat())
            return TimerStat(stat.calls, stat.seconds)

    # -- aggregate views -----------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat view of every counter and timer.

        Timers appear as two keys, ``<name>.calls`` and ``<name>.seconds``.
        """
        with self._lock:
            out: Dict[str, float] = dict(self._counters)
            for name, stat in self._timers.items():
                out[f"{name}.calls"] = stat.calls
                out[f"{name}.seconds"] = stat.seconds
            return out

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Counters only (no timers), optionally filtered by name prefix.

        Counters are integer event counts, so two runs doing the same work
        produce *identical* dicts -- this is the view the chaos suite
        compares bitwise across seeds, where timer wall-clock would differ
        every run.
        """
        with self._lock:
            return {
                name: value
                for name, value in sorted(self._counters.items())
                if name.startswith(prefix)
            }

    def reset(self) -> None:
        """Drop every counter and timer."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()


def snapshot_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """What changed between two snapshots (zero-change keys dropped)."""
    out: Dict[str, float] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            out[name] = change
    return out


def counters_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Integer counter changes between two :meth:`MetricsRegistry.counters`
    views (zero-change keys dropped).

    The integer twin of :func:`snapshot_delta`: because the inputs carry
    no timers, the result is bitwise comparable across runs -- this is
    what the chaos runners attach to their deterministic signatures.
    """
    out: Dict[str, int] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            out[name] = change
    return out


def format_snapshot(values: Dict[str, float], title: str = "Runtime metrics") -> str:
    """Render a snapshot (or delta) as an aligned text block."""
    if not values:
        return f"{title}: (none)"
    width = max(len(name) for name in values)
    lines = [f"{title}:"]
    for name in sorted(values):
        value = values[name]
        if name.endswith(".seconds"):
            rendered = f"{value:.4f}"
        else:
            rendered = f"{value:g}"
        lines.append(f"  {name.ljust(width)} = {rendered}")
    return "\n".join(lines)


#: Process-global registry used by the library's instrumented hot paths.
metrics = MetricsRegistry()
