"""Named locks and an opt-in runtime lock-order watchdog.

Every lock in the library is created through :func:`named_lock`,
:func:`named_rlock`, or :func:`named_condition` with a stable dotted site
name (``"serving.registry.publish"``).  When the watchdog is disarmed —
the default — the factories return **raw** :mod:`threading` primitives,
so production hot paths pay zero overhead.  When armed (either
``REPRO_LOCK_WATCHDOG=1`` in the environment at import time, or
:func:`enable_watchdog` / :func:`watch_locks` from code), newly created
locks are wrapped so each acquisition is recorded:

* a per-thread stack of currently-held lock names,
* a global acquisition-order graph (edges ``held -> acquired``) merged
  across threads, with eager inversion detection (both ``a -> b`` and
  ``b -> a`` observed) and Tarjan-SCC cycle detection on demand,
* per-lock hold-time statistics (acquire counts, max hold, long holds).

The watchdog reports through :meth:`LockWatchdog.report` (JSON-ready
dict), :meth:`LockWatchdog.write_report` (artifact file, written at
process exit when ``REPRO_LOCK_REPORT`` names a path), and
:meth:`LockWatchdog.publish_metrics` (delta-tracked ``lock.*`` counters).

This module is imported by every lock-using package, so it must stay a
stdlib-only leaf: no imports from elsewhere in :mod:`repro` at module
level (``publish_metrics`` late-imports the metrics registry).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "LockWatchdog",
    "graph_cycles",
    "named_lock",
    "named_rlock",
    "named_condition",
    "enable_watchdog",
    "disable_watchdog",
    "watchdog",
    "watch_locks",
]

#: Metric names published by :meth:`LockWatchdog.publish_metrics`; kept in
#: the runtime metric catalog (``repro.runtime.catalog``).
_METRIC_ACQUIRES = "lock.acquires"
_METRIC_LONG_HOLDS = "lock.long_holds"
_METRIC_EDGES = "lock.order_edges"
_METRIC_INVERSIONS = "lock.order_inversions"
_METRIC_CYCLES = "lock.order_cycles"


class LockWatchdog:
    """Runtime lock-acquisition tracker.

    Thread-safe.  The internal bookkeeping lock is a raw primitive and is
    a leaf (never held while acquiring anything else), so the watchdog
    cannot itself introduce a lock-order hazard.  The acquire/release
    paths never touch the metrics registry — the registry's own lock may
    be tracked, and publishing from inside the hook would recurse.
    """

    def __init__(self, long_hold_seconds: float = 0.1) -> None:
        self.long_hold_seconds = float(long_hold_seconds)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._edge_sites: Dict[Tuple[str, str], str] = {}
        self._stats: Dict[str, Dict[str, float]] = {}
        self._inversions: Set[Tuple[str, str]] = set()
        self._published: Dict[str, int] = {}

    # -- per-thread held stack -------------------------------------------

    def _stack(self) -> List[List[object]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_names(self) -> Tuple[str, ...]:
        """Names of locks the calling thread currently holds (outermost first)."""
        return tuple(str(entry[0]) for entry in self._stack())

    # -- hooks called by _TrackedLock ------------------------------------

    def on_acquired(self, name: str) -> None:
        stack = self._stack()
        held = [str(entry[0]) for entry in stack]
        thread = threading.current_thread().name
        with self._lock:
            rec = self._stats.setdefault(
                name, {"acquires": 0, "long_holds": 0, "max_hold_seconds": 0.0}
            )
            rec["acquires"] += 1
            for held_name in held:
                if held_name == name:  # re-entrant RLock acquisition
                    continue
                key = (held_name, name)
                self._edges[key] = self._edges.get(key, 0) + 1
                self._edge_sites.setdefault(key, thread)
                if (name, held_name) in self._edges:
                    inv = (min(held_name, name), max(held_name, name))
                    self._inversions.add(inv)
        stack.append([name, time.perf_counter()])

    def on_released(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == name:
                entry = stack.pop(i)
                break
        else:
            return  # release of a lock acquired before tracking began
        elapsed = time.perf_counter() - float(entry[1])  # type: ignore[arg-type]
        with self._lock:
            rec = self._stats.setdefault(
                name, {"acquires": 0, "long_holds": 0, "max_hold_seconds": 0.0}
            )
            if elapsed > rec["max_hold_seconds"]:
                rec["max_hold_seconds"] = elapsed
            if elapsed >= self.long_hold_seconds:
                rec["long_holds"] += 1

    # -- analysis ---------------------------------------------------------

    def edges(self) -> Dict[Tuple[str, str], int]:
        with self._lock:
            return dict(self._edges)

    def inversions(self) -> List[Tuple[str, str]]:
        with self._lock:
            return sorted(self._inversions)

    def cycles(self) -> List[List[str]]:
        """Cycles in the observed acquisition-order graph (Tarjan SCCs)."""
        return graph_cycles(set(self.edges()))

    def report(self) -> Dict[str, object]:
        with self._lock:
            stats = {
                name: dict(rec) for name, rec in sorted(self._stats.items())
            }
            edges = sorted(
                (
                    {
                        "from": a,
                        "to": b,
                        "count": count,
                        "first_thread": self._edge_sites.get((a, b), ""),
                    }
                    for (a, b), count in self._edges.items()
                ),
                key=lambda e: (e["from"], e["to"]),
            )
            inversions = sorted(list(pair) for pair in self._inversions)
            edge_keys = set(self._edges)
        return {
            "long_hold_seconds": self.long_hold_seconds,
            "locks": stats,
            "edges": edges,
            "inversions": inversions,
            "cycles": graph_cycles(edge_keys),
        }

    def write_report(self, path: str) -> None:
        payload = self.report()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def publish_metrics(self) -> Dict[str, int]:
        """Publish delta-tracked ``lock.*`` counters to the metrics registry.

        Safe to call repeatedly: only the growth since the previous call
        is emitted.  Returns the deltas that were published.
        """
        from .runtime.metrics import metrics

        with self._lock:
            edge_keys = set(self._edges)
            totals = {
                _METRIC_ACQUIRES: int(
                    sum(rec["acquires"] for rec in self._stats.values())
                ),
                _METRIC_LONG_HOLDS: int(
                    sum(rec["long_holds"] for rec in self._stats.values())
                ),
                _METRIC_EDGES: len(self._edges),
                _METRIC_INVERSIONS: len(self._inversions),
            }
        totals[_METRIC_CYCLES] = len(graph_cycles(edge_keys))
        with self._lock:
            deltas = {
                name: value - self._published.get(name, 0)
                for name, value in totals.items()
            }
            self._published = totals
        for name, delta in deltas.items():
            if delta > 0:
                metrics.increment(name, delta)
        return deltas


def graph_cycles(edges: Set[Tuple[str, str]]) -> List[List[str]]:
    """Cycles in a directed graph given as a set of (src, dst) edges.

    Returns one representative closed walk per strongly connected
    component with a cycle, e.g. ``["a", "b", "a"]``.  Deterministic:
    nodes are visited in sorted order.
    """
    adjacency: Dict[str, Set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())

    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        # Iterative Tarjan: (node, iterator over remaining neighbours).
        work: List[Tuple[str, Iterator[str]]] = []
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(sorted(adjacency[root]))))
        while work:
            node, neighbours = work[-1]
            advanced = False
            for nxt in neighbours:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adjacency[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in sorted(adjacency):
        if node not in index_of:
            strongconnect(node)

    cycles: List[List[str]] = []
    for component in sccs:
        members = sorted(component)
        if len(members) > 1:
            cycles.append(_component_cycle(members, adjacency))
        elif members[0] in adjacency.get(members[0], set()):
            cycles.append([members[0], members[0]])
    cycles.sort()
    return cycles


def _component_cycle(
    members: List[str], adjacency: Dict[str, Set[str]]
) -> List[str]:
    """A representative closed walk through a multi-node SCC."""
    member_set = set(members)
    start = members[0]
    path = [start]
    seen = {start: 0}
    current = start
    while True:
        nxt = min(n for n in adjacency[current] if n in member_set)
        if nxt in seen:
            return path[seen[nxt] :] + [nxt]
        seen[nxt] = len(path)
        path.append(nxt)
        current = nxt


class _TrackedLock:
    """Wraps a Lock/RLock, reporting acquire/release to a watchdog.

    Also serves as the backing lock of a tracked ``Condition``: the
    wrapper deliberately exposes no ``_release_save`` / ``_acquire_restore``
    / ``_is_owned``, so :class:`threading.Condition` falls back to plain
    ``release()`` / ``acquire()`` calls, which keep the per-thread held
    stack consistent across ``wait()``.
    """

    __slots__ = ("_inner", "name", "_watchdog")

    def __init__(self, inner: object, name: str, watchdog: LockWatchdog) -> None:
        self._inner = inner
        self.name = name
        self._watchdog = watchdog

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if acquired:
            self._watchdog.on_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._watchdog.on_released(self.name)
        self._inner.release()  # type: ignore[attr-defined]

    def locked(self) -> bool:
        return self._inner.locked()  # type: ignore[attr-defined]

    def __enter__(self) -> "_TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<tracked {self._inner!r} name={self.name!r}>"


_guard = threading.Lock()
_watchdog: Optional[LockWatchdog] = None


def watchdog() -> Optional[LockWatchdog]:
    """The active global watchdog, or ``None`` when disarmed."""
    return _watchdog


def enable_watchdog(long_hold_seconds: float = 0.1) -> LockWatchdog:
    """Arm the global watchdog; idempotent.

    Only locks created *after* arming are tracked — existing raw locks
    keep their zero-overhead fast path.
    """
    global _watchdog
    with _guard:
        if _watchdog is None:
            _watchdog = LockWatchdog(long_hold_seconds=long_hold_seconds)
        return _watchdog


def disable_watchdog() -> Optional[LockWatchdog]:
    """Disarm the global watchdog, returning the previous one (if any).

    Locks already created as tracked keep reporting to the watchdog they
    were created under; new locks revert to raw primitives.
    """
    global _watchdog
    with _guard:
        previous = _watchdog
        _watchdog = None
        return previous


@contextmanager
def watch_locks(long_hold_seconds: float = 0.1):
    """Scoped watchdog for tests: arm a *fresh* watchdog, yield it, disarm.

    Locks created inside the scope are tracked by the yielded watchdog
    only, so concurrent state from earlier scopes cannot leak in.
    """
    global _watchdog
    with _guard:
        previous = _watchdog
        scoped = LockWatchdog(long_hold_seconds=long_hold_seconds)
        _watchdog = scoped
    try:
        yield scoped
    finally:
        with _guard:
            _watchdog = previous


def named_lock(name: str) -> object:
    """A mutex for the dotted site *name*; tracked iff the watchdog is armed."""
    active = _watchdog
    if active is None:
        return threading.Lock()
    return _TrackedLock(threading.Lock(), name, active)


def named_rlock(name: str) -> object:
    """A re-entrant mutex for *name*; tracked iff the watchdog is armed."""
    active = _watchdog
    if active is None:
        return threading.RLock()
    return _TrackedLock(threading.RLock(), name, active)


def named_condition(name: str) -> threading.Condition:
    """A condition variable whose backing lock is tracked iff armed."""
    active = _watchdog
    if active is None:
        return threading.Condition()
    return threading.Condition(_TrackedLock(threading.Lock(), name, active))


def _install_from_env() -> None:
    flag = os.environ.get("REPRO_LOCK_WATCHDOG", "").strip().lower()
    if flag not in ("1", "true", "on", "yes"):
        return
    armed = enable_watchdog()
    report_path = os.environ.get("REPRO_LOCK_REPORT", "").strip()
    if report_path:
        atexit.register(armed.write_report, report_path)


_install_from_env()
