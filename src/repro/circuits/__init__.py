"""Circuit testbenches with schematic and post-layout stages."""

from .base import Stage, Testbench
from .diffpair import DifferentialPair
from .modeling import FusionProblem
from .opamp import FiveTransistorOta
from .ring_oscillator import RingOscillator
from .sram import SramReadPath

__all__ = [
    "DifferentialPair",
    "FiveTransistorOta",
    "FusionProblem",
    "RingOscillator",
    "SramReadPath",
    "Stage",
    "Testbench",
]
