"""Bridging a testbench's two stages into one BMF modeling problem.

The paper's flow (Section V): fit an early-stage (schematic) model from
plentiful cheap simulations, then fuse it with very few late-stage
(post-layout) simulations.  :class:`FusionProblem` packages everything that
flow needs for one (testbench, metric) pair:

* the orthonormal bases of both stages (linear by default, as in the
  paper's experiments; any total degree is supported -- the nonlinear case
  Section V's closing remark points to),
* the alignment between them: which late-stage basis functions have an
  early-stage counterpart, and which have *no* prior information (the
  appended parasitic variables -- Section IV-B's missing prior),
* fitting the early model (OMP on 3000 samples, as in the paper, or ridge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..basis import OrthonormalBasis
from ..montecarlo.engine import simulate_dataset
from ..regression import OrthogonalMatchingPursuit, RidgeRegressor
from .base import Stage, Testbench

__all__ = ["FusionProblem"]


@dataclass
class FusionProblem:
    """A (testbench, metric) pair set up for early/late model fusion.

    Attributes
    ----------
    testbench:
        The circuit under study.
    metric:
        Which of its performance metrics to model.
    degree:
        Total polynomial degree of both models (1 = linear, the paper's
        experimental setting).
    early_basis / late_basis:
        Orthonormal bases over the schematic / post-layout spaces.  Every
        early basis function also appears in the late basis (the shared
        schematic variables occupy the leading columns of both spaces).
    """

    testbench: Testbench
    metric: str
    degree: int = 1

    def __post_init__(self):
        if self.metric not in self.testbench.metrics:
            raise ValueError(
                f"{self.testbench.name} has no metric {self.metric!r}; "
                f"available: {self.testbench.metrics}"
            )
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        num_early = self.testbench.num_vars(Stage.SCHEMATIC)
        num_late = self.testbench.num_vars(Stage.POST_LAYOUT)
        if self.degree == 1:
            self.early_basis = OrthonormalBasis.linear(num_early)
            self.late_basis = OrthonormalBasis.linear(num_late)
        else:
            self.early_basis = OrthonormalBasis.total_degree(
                num_early, self.degree
            )
            self.late_basis = OrthonormalBasis.total_degree(
                num_late, self.degree
            )
        # Early basis function -> its position in the late basis.  The
        # schematic variables keep their indices in the post-layout space,
        # so every early multi-index appears verbatim in the late basis.
        late_positions = {index: m for m, index in enumerate(self.late_basis.indices)}
        self._early_to_late = np.array(
            [late_positions[index] for index in self.early_basis.indices],
            dtype=int,
        )

    # ------------------------------------------------------------------
    @property
    def num_shared_terms(self) -> int:
        """Late basis functions that also exist in the early basis."""
        return self.early_basis.size

    def missing_indices(self) -> List[int]:
        """Late-basis positions with no early-stage prior knowledge.

        These are the basis functions involving the appended parasitic
        variables (all of them for a linear basis; for higher degrees also
        every cross term touching a parasitic variable).
        """
        shared = set(self._early_to_late.tolist())
        return [m for m in range(self.late_basis.size) if m not in shared]

    def align_early_coefficients(self, alpha_early: np.ndarray) -> np.ndarray:
        """Embed early coefficients into the late basis (zeros for missing).

        Feed the result to :class:`repro.bmf.BmfRegressor` together with
        ``missing_indices()`` so the new terms get an uninformative prior.
        """
        alpha_early = np.asarray(alpha_early, dtype=float)
        if alpha_early.shape != (self.early_basis.size,):
            raise ValueError(
                f"expected {self.early_basis.size} early coefficients, "
                f"got shape {alpha_early.shape}"
            )
        aligned = np.zeros(self.late_basis.size)
        aligned[self._early_to_late] = alpha_early
        return aligned

    # ------------------------------------------------------------------
    def fit_early_model(
        self,
        num_samples: int,
        rng: np.random.Generator,
        method: str = "omp",
        max_terms: Optional[int] = None,
    ) -> np.ndarray:
        """Fit the schematic-stage model coefficients (eq. 10).

        Parameters
        ----------
        num_samples:
            Schematic Monte Carlo samples (the paper uses 3000).
        rng:
            Random generator for the schematic sampling.
        method:
            ``"omp"`` (as in the paper) or ``"ridge"`` (faster; useful in
            tests).
        max_terms:
            Optional cap on OMP model order.

        Returns
        -------
        numpy.ndarray
            Early coefficients over ``early_basis``.
        """
        dataset = simulate_dataset(
            self.testbench, Stage.SCHEMATIC, num_samples, rng, [self.metric]
        )
        target = dataset.metric(self.metric)
        if method == "omp":
            regressor = OrthogonalMatchingPursuit(self.early_basis, max_terms=max_terms)
        elif method == "ridge":
            regressor = RidgeRegressor(self.early_basis, penalty=1e-6 * num_samples)
        else:
            raise ValueError(f"method must be 'omp' or 'ridge', got {method!r}")
        regressor.fit(dataset.x, target)
        return regressor.coefficients_
