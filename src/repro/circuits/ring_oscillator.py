"""Ring-oscillator testbench (the paper's first example, Section V-A).

A CMOS ring oscillator of ``n_ring`` inverter stages plus a tapered output
buffer chain, evaluated behaviorally:

* per-stage delay        ``t_i = C_i VDD / I_i`` with the alpha-power-law
  drive ``I_i`` combined from the stage's NMOS/PMOS pull strengths,
* frequency              ``f0 = 1 / (2 sum_i t_i)``,
* power                  dynamic ``f0 VDD^2 sum C`` over all switching nodes
  plus subthreshold leakage of every device,
* phase noise            accumulated per-transition thermal jitter
  ``sigma_t,i^2 = kT gamma C_i / I_i^2`` folded into the standard
  ``L(df) = 10 log10(f0^3 sum sigma_t^2 / df^2)`` far-offset expression.

The post-layout stage differs from the schematic stage exactly the way the
paper's flow does: extracted wire capacitance loads every net (with its own
*parasitic* variation variables -- the missing-prior scenario of Section
IV-B) and each device picks up a deterministic layout-dependent strength /
loading shift, so the late-stage model coefficients are *similar but not
identical* to the early-stage ones.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..devices import MosfetArray
from ..process import ProcessKit, ProcessSpace, VariationVariable
from .base import Stage, Testbench

__all__ = ["RingOscillator"]

_BOLTZMANN = 1.380649e-23


class RingOscillator(Testbench):
    """Behavioral ring oscillator with schematic and post-layout stages.

    Parameters
    ----------
    n_ring:
        Number of ring inverter stages (must be odd).
    n_buffer:
        Number of tapered output-buffer stages.
    kit:
        Process kit; defaults to :class:`~repro.process.ProcessKit`.
    layout_seed:
        Seed of the deterministic layout-shift draw (the "layout" itself).
    wire_cap_fraction:
        Mean extracted wire capacitance per net as a fraction of the net's
        schematic load.
    wire_cap_sigma:
        Relative 1-sigma variation of each wire capacitance (each net gets
        its own parasitic variation variable at the post-layout stage).
    offset_frequency:
        Phase-noise offset frequency in Hz.
    noise_gamma:
        Excess thermal-noise factor of the devices.
    """

    name = "ring-oscillator"
    metrics = ("power", "phase_noise", "frequency")

    def __init__(
        self,
        n_ring: int = 25,
        n_buffer: int = 6,
        kit: Optional[ProcessKit] = None,
        layout_seed: int = 1307,
        wire_cap_fraction: float = 0.18,
        wire_cap_sigma: float = 0.25,
        offset_frequency: float = 1e6,
        noise_gamma: float = 1.5,
    ):
        if n_ring < 3 or n_ring % 2 == 0:
            raise ValueError(f"n_ring must be an odd integer >= 3, got {n_ring}")
        if n_buffer < 1:
            raise ValueError(f"n_buffer must be >= 1, got {n_buffer}")
        self.n_ring = int(n_ring)
        self.n_buffer = int(n_buffer)
        self.kit = kit if kit is not None else ProcessKit()
        self.wire_cap_fraction = float(wire_cap_fraction)
        self.wire_cap_sigma = float(wire_cap_sigma)
        self.offset_frequency = float(offset_frequency)
        self.noise_gamma = float(noise_gamma)

        taper = 2.2 ** np.arange(self.n_buffer)
        self._ring_n = MosfetArray(
            "ro.ring.n", self.n_ring, vth0=0.32, beta0=4.0e-4, cap0=2.0e-16, area=1.0
        )
        self._ring_p = MosfetArray(
            "ro.ring.p", self.n_ring, vth0=0.35, beta0=3.6e-4, cap0=2.8e-16, area=1.3
        )
        self._buf_n = MosfetArray(
            "ro.buf.n",
            self.n_buffer,
            vth0=0.32,
            beta0=4.0e-4 * taper,
            cap0=2.0e-16 * taper,
            leak0=5e-9 * taper,
            area=taper,
        )
        self._buf_p = MosfetArray(
            "ro.buf.p",
            self.n_buffer,
            vth0=0.35,
            beta0=3.6e-4 * taper,
            cap0=2.8e-16 * taper,
            leak0=4e-9 * taper,
            area=1.3 * taper,
        )
        self._arrays = (self._ring_n, self._ring_p, self._buf_n, self._buf_p)

        space = ProcessSpace()
        self._interdie = space.add_block(
            "ro.global.g", self.kit.interdie_params, kind="interdie"
        )
        for array in self._arrays:
            array.register(space, self.kit)
        self._schematic_space = space

        # Post-layout: one parasitic wire-cap variable per switching net.
        self._num_nets = self.n_ring + self.n_buffer
        parasitics = [
            VariationVariable(f"ro.wire.c{i}", kind="parasitic")
            for i in range(self._num_nets)
        ]
        self._postlayout_space = space.extended(parasitics)
        self._parasitic_start = self._schematic_space.size

        # Deterministic layout shifts ("the layout"): small strength shifts,
        # cap shifts centered above zero (layout always adds loading).
        shift_rng = np.random.default_rng(layout_seed)
        for array in self._arrays:
            array.layout_beta_shift = shift_rng.normal(0.0, 0.05, array.count)
            array.layout_cap_shift = shift_rng.normal(0.08, 0.05, array.count)

        # Nominal (zero-variation, layout-shifted) net loads fix the mean
        # extracted wire capacitance of every net deterministically.
        ring_in0 = self._ring_n.cap0 * (
            1.0 + self._ring_n.layout_cap_shift
        ) + self._ring_p.cap0 * (1.0 + self._ring_p.layout_cap_shift)
        buf_in0 = self._buf_n.cap0 * (
            1.0 + self._buf_n.layout_cap_shift
        ) + self._buf_p.cap0 * (1.0 + self._buf_p.layout_cap_shift)
        node0 = np.roll(ring_in0, -1)
        node0[-1] += buf_in0[0]
        buf_node0 = np.empty_like(buf_in0)
        buf_node0[:-1] = buf_in0[1:]
        buf_node0[-1] = buf_in0[-1] * 1.5
        self._wire_nominal = self.wire_cap_fraction * np.concatenate(
            [node0, buf_node0]
        )

    # ------------------------------------------------------------------
    def space(self, stage: Stage) -> ProcessSpace:
        if stage is Stage.SCHEMATIC:
            return self._schematic_space
        return self._postlayout_space

    # ------------------------------------------------------------------
    def simulate(self, stage: Stage, samples: np.ndarray, metric: str) -> np.ndarray:
        self._check_metric(metric)
        samples = self._check_samples(stage, samples)
        state = self._evaluate(stage, samples)
        return state[metric]

    def _evaluate(self, stage: Stage, samples: np.ndarray) -> dict:
        kit = self.kit
        vdd = kit.supply_voltage
        layout = stage.is_late
        interdie = list(self._interdie)

        ring_n = self._ring_n.electrical(samples, kit, interdie, layout)
        ring_p = self._ring_p.electrical(samples, kit, interdie, layout)
        buf_n = self._buf_n.electrical(samples, kit, interdie, layout)
        buf_p = self._buf_p.electrical(samples, kit, interdie, layout)

        # Stage drive: series combination of the pull-up/pull-down strengths.
        current_n = self._ring_n.on_current(ring_n, vdd)
        current_p = self._ring_p.on_current(ring_p, vdd)
        drive = 2.0 * current_n * current_p / (current_n + current_p)

        # Ring node i is loaded by the input capacitance of stage i+1.
        input_cap = ring_n.cap + ring_p.cap
        node_cap = np.roll(input_cap, -1, axis=1)
        # The last ring node also drives the first buffer.
        node_cap[:, -1] += buf_n.cap[:, 0] + buf_p.cap[:, 0]

        buffer_cap = buf_n.cap + buf_p.cap
        # Buffer node j is loaded by buffer j+1's input (last one by the pad).
        buffer_node_cap = np.empty_like(buffer_cap)
        buffer_node_cap[:, :-1] = buffer_cap[:, 1:]
        buffer_node_cap[:, -1] = buffer_cap[:, -1] * 1.5

        if layout:
            wire = self._wire_caps(samples)
            node_cap = node_cap + wire[:, : self.n_ring]
            buffer_node_cap = buffer_node_cap + wire[:, self.n_ring :]

        stage_delay = node_cap * vdd / drive
        period = 2.0 * stage_delay.sum(axis=1)
        frequency = 1.0 / period

        dynamic = frequency * vdd**2 * (
            node_cap.sum(axis=1) + buffer_node_cap.sum(axis=1)
        )
        leakage = vdd * (
            self._ring_n.off_current(ring_n, kit).sum(axis=1)
            + self._ring_p.off_current(ring_p, kit).sum(axis=1)
            + self._buf_n.off_current(buf_n, kit).sum(axis=1)
            + self._buf_p.off_current(buf_p, kit).sum(axis=1)
        )
        power = dynamic + leakage

        # Thermal jitter accumulated over the 2 * n_ring transitions/period.
        kt = _BOLTZMANN * kit.temperature
        sigma_t_sq = self.noise_gamma * kt * node_cap / drive**2
        phase_noise = 10.0 * np.log10(
            2.0 * frequency**3 * sigma_t_sq.sum(axis=1) / self.offset_frequency**2
        )

        return {"power": power, "phase_noise": phase_noise, "frequency": frequency}

    def _wire_caps(self, samples: np.ndarray) -> np.ndarray:
        """Extracted wire capacitance per net with parasitic variation."""
        start = self._parasitic_start
        parasitic = samples[:, start : start + self._num_nets]
        return self._wire_nominal * (1.0 + self.wire_cap_sigma * parasitic)

    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, **overrides) -> "RingOscillator":
        """An instance with the paper's dimensionality (~7.2k variables).

        Uses 40 mismatch variables per transistor as in the commercial
        32 nm SOI kit; the default constructor keeps problems laptop-sized.
        """
        params = dict(
            n_ring=63,
            n_buffer=26,
            kit=ProcessKit(params_per_device=40, interdie_params=17),
        )
        params.update(overrides)
        return cls(**params)
