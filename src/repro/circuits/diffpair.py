"""Differential-pair testbench (the prior-mapping example of Section IV-A).

The input offset voltage of a resistively-loaded differential pair is
simulated with the SPICE-lite MNA engine (two DC solves per sample: one to
read the mismatch-induced output imbalance, one with a small differential
drive to measure the gain that refers it to the input).

Two stages:

* **schematic**: each input transistor is a single device whose threshold
  mismatch is one variation variable (plus one per load resistor) -- the
  model of eq. (36): ``V_OS ~ a1 x1 + a2 x2 + ...``;
* **post-layout**: each input transistor is drawn with ``fingers`` parallel
  fingers, each with its *own* (wider, Pelgrom-scaled) threshold mismatch
  variable -- the model of eq. (37).  The mapping between the stages is
  exactly :class:`repro.bmf.FingerMap` with ``x_r = sum_t x_{r,t}/sqrt(W)``.
"""

from __future__ import annotations

import math
import numpy as np

from ..bmf.prior_mapping import FingerMap
from ..spice import Circuit, CurrentSource, Mosfet, Resistor, VoltageSource
from ..spice.dc import dc_operating_point
from ..process import ProcessSpace, VariationVariable
from .base import Stage, Testbench

__all__ = ["DifferentialPair"]


class DifferentialPair(Testbench):
    """Resistively loaded differential pair simulated with MNA.

    Parameters
    ----------
    fingers:
        Fingers per input transistor at the post-layout stage (the
        schematic stage always has one).
    sigma_vth:
        1-sigma threshold mismatch of a whole (single-finger) input device.
    sigma_load:
        Relative 1-sigma mismatch of each load resistor.
    """

    name = "differential-pair"
    metrics = ("offset_voltage", "gain")

    def __init__(
        self,
        fingers: int = 2,
        sigma_vth: float = 5e-3,
        sigma_load: float = 0.01,
        vdd: float = 1.2,
        vcm: float = 0.75,
        vth0: float = 0.40,
        kp: float = 2e-3,
        load_resistance: float = 5e3,
        tail_current: float = 2e-4,
        layout_load_shift: float = 0.01,
    ):
        if fingers < 1:
            raise ValueError(f"fingers must be >= 1, got {fingers}")
        self.fingers = int(fingers)
        self.sigma_vth = float(sigma_vth)
        self.sigma_load = float(sigma_load)
        self.vdd = float(vdd)
        self.vcm = float(vcm)
        self.vth0 = float(vth0)
        self.kp = float(kp)
        self.load_resistance = float(load_resistance)
        self.tail_current = float(tail_current)
        self.layout_load_shift = float(layout_load_shift)

        self._schematic_space = ProcessSpace(
            [
                VariationVariable("dp.m1.vth", device="dp.m1"),
                VariationVariable("dp.m2.vth", device="dp.m2"),
                VariationVariable("dp.r1.value", device="dp.r1"),
                VariationVariable("dp.r2.value", device="dp.r2"),
            ]
        )
        finger_vars = [
            VariationVariable(f"dp.m{device}.f{f}.vth", device=f"dp.m{device}")
            for device in (1, 2)
            for f in range(self.fingers)
        ]
        self._postlayout_space = ProcessSpace(
            finger_vars
            + [
                VariationVariable("dp.r1.value", device="dp.r1"),
                VariationVariable("dp.r2.value", device="dp.r2"),
            ]
        )

    # ------------------------------------------------------------------
    def finger_map(self) -> FingerMap:
        """The schematic-to-post-layout variable mapping (Section IV-A)."""
        return FingerMap((self.fingers, self.fingers, 1, 1))

    def space(self, stage: Stage) -> ProcessSpace:
        if stage is Stage.SCHEMATIC:
            return self._schematic_space
        return self._postlayout_space

    # ------------------------------------------------------------------
    def simulate(self, stage: Stage, samples: np.ndarray, metric: str) -> np.ndarray:
        self._check_metric(metric)
        samples = self._check_samples(stage, samples)
        out = np.empty(samples.shape[0])
        for k, row in enumerate(samples):
            offset, gain = self._simulate_one(stage, row)
            out[k] = offset if metric == "offset_voltage" else gain
        return out

    def _simulate_one(self, stage: Stage, sample: np.ndarray):
        probe = 1e-4  # differential drive used to measure the gain
        balanced = self._solve(stage, sample, 0.0)
        driven = self._solve(stage, sample, probe)
        gain = (driven - balanced) / probe
        if abs(gain) < 1e-9:
            raise RuntimeError("differential pair has no gain at this bias")
        offset = -balanced / gain
        return offset, abs(gain)

    def _solve(self, stage: Stage, sample: np.ndarray, vdiff: float) -> float:
        """Differential output voltage for one sample and input drive."""
        circuit = self._build_circuit(stage, sample, vdiff)
        op = dc_operating_point(circuit)
        return op.voltage("d2") - op.voltage("d1")

    def _build_circuit(
        self, stage: Stage, sample: np.ndarray, vdiff: float
    ) -> Circuit:
        circuit = Circuit("diffpair")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=self.vdd))
        circuit.add(
            VoltageSource("VG1", "g1", "0", dc=self.vcm + 0.5 * vdiff)
        )
        circuit.add(
            VoltageSource("VG2", "g2", "0", dc=self.vcm - 0.5 * vdiff)
        )
        circuit.add(CurrentSource("ITAIL", "s", "0", dc=self.tail_current))

        if stage is Stage.SCHEMATIC:
            vth1 = self.vth0 + self.sigma_vth * sample[0]
            vth2 = self.vth0 + self.sigma_vth * sample[1]
            circuit.add(Mosfet("M1", "d1", "g1", "s", self.kp, vth1))
            circuit.add(Mosfet("M2", "d2", "g2", "s", self.kp, vth2))
            r_shift = 0.0
            load_samples = sample[2:4]
        else:
            # Each finger: 1/W of the width, Pelgrom-widened local mismatch.
            finger_sigma = self.sigma_vth * math.sqrt(self.fingers)
            finger_kp = self.kp / self.fingers
            for device, (drain, gate) in enumerate(
                (("d1", "g1"), ("d2", "g2")), start=1
            ):
                base = (device - 1) * self.fingers
                for f in range(self.fingers):
                    vth = self.vth0 + finger_sigma * sample[base + f]
                    circuit.add(
                        Mosfet(f"M{device}F{f}", drain, gate, "s", finger_kp, vth)
                    )
            r_shift = self.layout_load_shift
            load_samples = sample[-2:]

        for i, node in enumerate(("d1", "d2")):
            resistance = self.load_resistance * (
                1.0 + r_shift + self.sigma_load * load_samples[i]
            )
            circuit.add(Resistor(f"R{i + 1}", "vdd", node, resistance))
        return circuit
