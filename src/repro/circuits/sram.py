"""SRAM read-path testbench (the paper's second example, Section V-B).

One SRAM column of ``n_cells`` 6T bit cells plus precharge devices, a
sense amplifier, and a tapered wordline timing chain.  The performance of
interest is the read delay from the wordline trigger to the sense-amp
output, evaluated behaviorally as

    delay = t_wordline + t_bitline + t_senseamp

* ``t_wordline``: accumulated inverter delays of the timing chain;
* ``t_bitline``:  the bitline must discharge by the required swing
  (nominal swing + sense-amp input offset) through the accessed cell's
  access/pull-down stack, *fighting the accumulated subthreshold leakage of
  the other n_cells - 1 cells on the bitline* -- the classic read-current
  vs leakage race, which is what makes the delay mildly nonlinear in the
  per-cell threshold voltages;
* ``t_senseamp``:  regeneration time set by the SA tail current.

The accessed cell and the sense amp carry large model coefficients while
every unaccessed cell contributes only through its (exponentially small)
leakage, giving the genuinely sparse-but-high-dimensional structure the
paper's SRAM experiment exercises with 66 117 variables.

The post-layout stage adds extracted bitline/wordline wire capacitance with
its own parasitic variation variables and deterministic per-device layout
shifts, as in :mod:`repro.circuits.ring_oscillator`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..devices import MosfetArray
from ..process import ProcessKit, ProcessSpace, VariationVariable
from .base import Stage, Testbench

__all__ = ["SramReadPath"]


class SramReadPath(Testbench):
    """Behavioral SRAM read path with schematic and post-layout stages.

    Parameters
    ----------
    n_cells:
        Bit cells on the column (the paper uses 128).
    n_timing:
        Inverters in the wordline timing chain.
    kit:
        Process kit; defaults to :class:`~repro.process.ProcessKit`.
    layout_seed:
        Seed of the deterministic layout-shift draw.
    bitline_swing:
        Nominal differential bitline swing (V) the sense amp needs.
    wire_cap_fraction:
        Mean extracted wire cap as a fraction of the schematic bitline cap.
    wire_cap_sigma:
        Relative 1-sigma variation of each parasitic wire-cap variable.
    accessed_cell:
        Index of the cell being read (coefficients of this cell's devices
        dominate the model).
    """

    name = "sram-read-path"
    metrics = ("read_delay",)

    def __init__(
        self,
        n_cells: int = 64,
        n_timing: int = 12,
        kit: Optional[ProcessKit] = None,
        layout_seed: int = 2311,
        bitline_swing: float = 0.12,
        wire_cap_fraction: float = 0.25,
        wire_cap_sigma: float = 0.25,
        accessed_cell: int = 0,
    ):
        if n_cells < 2:
            raise ValueError(f"n_cells must be >= 2, got {n_cells}")
        if not 0 <= accessed_cell < n_cells:
            raise ValueError(
                f"accessed_cell must be in [0, {n_cells}), got {accessed_cell}"
            )
        self.n_cells = int(n_cells)
        self.n_timing = int(n_timing)
        self.kit = kit if kit is not None else ProcessKit()
        self.bitline_swing = float(bitline_swing)
        self.wire_cap_fraction = float(wire_cap_fraction)
        self.wire_cap_sigma = float(wire_cap_sigma)
        self.accessed_cell = int(accessed_cell)

        cells = self.n_cells
        # 6T cell: two access NMOS, two pull-down NMOS, two pull-up PMOS.
        # The read path conducts through access[cell]/pulldown[cell]; the
        # mirrored-side and pull-up devices only contribute leakage.
        self._access = MosfetArray(
            "sram.cell.acc", cells, vth0=0.34, beta0=2.6e-4, cap0=9e-17,
            leak0=3.0e-8, area=0.55,
        )
        self._pulldown = MosfetArray(
            "sram.cell.pd", cells, vth0=0.33, beta0=3.2e-4, cap0=1.1e-16,
            leak0=3.5e-8, area=0.7,
        )
        self._access_b = MosfetArray(
            "sram.cell.accb", cells, vth0=0.34, beta0=2.6e-4, cap0=9e-17,
            leak0=3.0e-8, area=0.55,
        )
        self._pulldown_b = MosfetArray(
            "sram.cell.pdb", cells, vth0=0.33, beta0=3.2e-4, cap0=1.1e-16,
            leak0=3.5e-8, area=0.7,
        )
        self._pullup = MosfetArray(
            "sram.cell.pu", cells, vth0=0.36, beta0=1.4e-4, cap0=8e-17,
            leak0=1.5e-8, area=0.5,
        )
        self._pullup_b = MosfetArray(
            "sram.cell.pub", cells, vth0=0.36, beta0=1.4e-4, cap0=8e-17,
            leak0=1.5e-8, area=0.5,
        )
        self._precharge = MosfetArray(
            "sram.pre", 2, vth0=0.35, beta0=5e-4, cap0=2.5e-16, area=1.5
        )
        self._senseamp = MosfetArray(
            "sram.sa", 8, vth0=0.33, beta0=4.5e-4, cap0=2e-16, area=1.2
        )
        timing_taper = 1.6 ** np.arange(self.n_timing)
        self._timing_n = MosfetArray(
            "sram.wl.n", self.n_timing, vth0=0.32, beta0=4.0e-4 * timing_taper,
            cap0=2.0e-16 * timing_taper, leak0=5e-9 * timing_taper,
            area=timing_taper,
        )
        self._timing_p = MosfetArray(
            "sram.wl.p", self.n_timing, vth0=0.35, beta0=3.6e-4 * timing_taper,
            cap0=2.8e-16 * timing_taper, leak0=4e-9 * timing_taper,
            area=1.3 * timing_taper,
        )
        self._arrays = (
            self._access,
            self._pulldown,
            self._access_b,
            self._pulldown_b,
            self._pullup,
            self._pullup_b,
            self._precharge,
            self._senseamp,
            self._timing_n,
            self._timing_p,
        )

        space = ProcessSpace()
        self._interdie = space.add_block(
            "sram.global.g", self.kit.interdie_params, kind="interdie"
        )
        for array in self._arrays:
            array.register(space, self.kit)
        self._schematic_space = space

        # Parasitics: bitline segments, wordline wire, two SA nets.
        self._num_bl_segments = max(2, cells // 8)
        self._num_parasitics = self._num_bl_segments + self.n_timing + 2
        parasitics = [
            VariationVariable(f"sram.wire.c{i}", kind="parasitic")
            for i in range(self._num_parasitics)
        ]
        self._postlayout_space = space.extended(parasitics)
        self._parasitic_start = self._schematic_space.size

        shift_rng = np.random.default_rng(layout_seed)
        for array in self._arrays:
            array.layout_beta_shift = shift_rng.normal(0.0, 0.04, array.count)
            array.layout_cap_shift = shift_rng.normal(0.10, 0.05, array.count)

        # Nominal extracted wire caps, fixed by the (deterministic) layout.
        bitline_cap0 = float(np.sum(self._access.cap0 * 3.0))
        self._bl_wire_nominal = (
            self.wire_cap_fraction * bitline_cap0 / self._num_bl_segments
        )
        timing_in0 = self._timing_n.cap0 * (
            1.0 + self._timing_n.layout_cap_shift
        ) + self._timing_p.cap0 * (1.0 + self._timing_p.layout_cap_shift)
        self._wl_wire_nominal = self.wire_cap_fraction * timing_in0
        self._sa_wire_nominal = self.wire_cap_fraction * float(
            np.sum(self._senseamp.cap0[:2])
        )

    # ------------------------------------------------------------------
    def space(self, stage: Stage) -> ProcessSpace:
        if stage is Stage.SCHEMATIC:
            return self._schematic_space
        return self._postlayout_space

    # ------------------------------------------------------------------
    def simulate(self, stage: Stage, samples: np.ndarray, metric: str) -> np.ndarray:
        self._check_metric(metric)
        samples = self._check_samples(stage, samples)
        kit = self.kit
        vdd = kit.supply_voltage
        layout = stage.is_late
        interdie = list(self._interdie)

        access = self._access.electrical(samples, kit, interdie, layout)
        pulldown = self._pulldown.electrical(samples, kit, interdie, layout)
        senseamp = self._senseamp.electrical(samples, kit, interdie, layout)
        timing_n = self._timing_n.electrical(samples, kit, interdie, layout)
        timing_p = self._timing_p.electrical(samples, kit, interdie, layout)

        # ---- wordline timing chain -----------------------------------
        current_n = self._timing_n.on_current(timing_n, vdd)
        current_p = self._timing_p.on_current(timing_p, vdd)
        drive = 2.0 * current_n * current_p / (current_n + current_p)
        input_cap = timing_n.cap + timing_p.cap
        node_cap = np.empty_like(input_cap)
        node_cap[:, :-1] = input_cap[:, 1:]
        # The last timing stage drives the wordline itself: all access gates.
        node_cap[:, -1] = access.cap.sum(axis=1) * 0.8
        if layout:
            wl_wire = self._wordline_wire(samples)
            node_cap = node_cap + wl_wire
        t_wordline = (node_cap * vdd / drive).sum(axis=1)

        # ---- bitline discharge ---------------------------------------
        cell = self.accessed_cell
        i_access = self._access.on_current(access, vdd)[:, cell]
        i_pulldown = self._pulldown.on_current(pulldown, vdd)[:, cell]
        read_current = 2.0 * i_access * i_pulldown / (i_access + i_pulldown)

        # Leakage of every *unaccessed* cell fights the read current.
        leak = self._access.off_current(access, kit)
        leak_total = leak.sum(axis=1) - leak[:, cell]

        bitline_cap = (access.cap * 3.0).sum(axis=1)
        if layout:
            bitline_cap = bitline_cap + self._bitline_wire(samples)

        # Sense-amp input offset shifts the required swing (input pair 0/1).
        offset = senseamp.vth[:, 0] - senseamp.vth[:, 1]
        required_swing = self.bitline_swing + offset
        t_bitline = bitline_cap * required_swing / (read_current - leak_total)

        # ---- sense-amp regeneration ----------------------------------
        i_tail = self._senseamp.on_current(senseamp, vdd)[:, 2:4].sum(axis=1)
        sa_cap = senseamp.cap[:, :2].sum(axis=1)
        if layout:
            sa_cap = sa_cap + self._sa_wire(samples)
        t_senseamp = sa_cap * vdd * 0.5 / i_tail

        return t_wordline + t_bitline + t_senseamp

    # ------------------------------------------------------------------
    def _parasitic_block(self, samples: np.ndarray) -> np.ndarray:
        start = self._parasitic_start
        return samples[:, start : start + self._num_parasitics]

    def _bitline_wire(self, samples: np.ndarray) -> np.ndarray:
        segments = self._parasitic_block(samples)[:, : self._num_bl_segments]
        per_segment = self._bl_wire_nominal * (
            1.0 + self.wire_cap_sigma * segments
        )
        return per_segment.sum(axis=1)

    def _wordline_wire(self, samples: np.ndarray) -> np.ndarray:
        start = self._num_bl_segments
        block = self._parasitic_block(samples)[:, start : start + self.n_timing]
        return self._wl_wire_nominal * (1.0 + self.wire_cap_sigma * block)

    def _sa_wire(self, samples: np.ndarray) -> np.ndarray:
        block = self._parasitic_block(samples)[:, -2:]
        per_net = 0.5 * self._sa_wire_nominal * (
            1.0 + self.wire_cap_sigma * block
        )
        return per_net.sum(axis=1)

    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, **overrides) -> "SramReadPath":
        """An instance in the paper's dimensionality class (~63k variables)."""
        params = dict(
            n_cells=256,
            n_timing=16,
            kit=ProcessKit(params_per_device=40, interdie_params=17),
        )
        params.update(overrides)
        return cls(**params)
