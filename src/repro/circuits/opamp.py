"""Five-transistor OTA testbench, simulated with the MNA engine.

A classic 5T operational transconductance amplifier (NMOS input pair, PMOS
current-mirror load, ideal tail source) in unity-gain feedback, evaluated
per Monte Carlo sample with real DC + AC analyses:

* ``offset_voltage``        -- follower output minus the input common mode;
* ``dc_gain``               -- open-loop gain recovered from the follower's
  DC transfer ``g = A / (1 + A)``;
* ``unity_gain_bandwidth``  -- the follower's -3 dB frequency, which for a
  single-pole OTA equals the open-loop GBW ``gm / (2 pi C_L)``.

The schematic stage varies the four transistor thresholds plus the load
capacitor and tail current; the post-layout stage adds parasitic
capacitance variables on the two internal nodes and a deterministic load
increase -- the same early/late structure as the large behavioral
testbenches, but produced by an actual netlist-level simulator.  Because
the variation count is small, this testbench is also the natural demo for
*quadratic* (total-degree-2) performance models.
"""

from __future__ import annotations

import numpy as np

from ..process import ProcessSpace, VariationVariable
from ..spice import Capacitor, Circuit, CurrentSource, Mosfet, VoltageSource
from ..spice.ac import ac_analysis
from .base import Stage, Testbench

__all__ = ["FiveTransistorOta"]


class FiveTransistorOta(Testbench):
    """5T OTA in unity feedback with schematic and post-layout stages.

    Parameters
    ----------
    sigma_vth:
        1-sigma threshold mismatch per transistor (volts).
    sigma_cap / sigma_tail:
        Relative 1-sigma variations of the load capacitor / tail current.
    sigma_parasitic:
        Relative 1-sigma variation of each post-layout parasitic cap.
    layout_cap_shift:
        Deterministic relative increase of the load cap after layout.
    """

    name = "five-transistor-ota"
    metrics = ("offset_voltage", "dc_gain", "unity_gain_bandwidth")

    def __init__(
        self,
        vdd: float = 1.2,
        vcm: float = 0.65,
        vth_n: float = 0.35,
        vth_p: float = 0.40,
        kp_input: float = 2e-3,
        kp_mirror: float = 1e-3,
        lambda_: float = 0.1,
        tail_current: float = 2e-4,
        load_cap: float = 2e-12,
        sigma_vth: float = 6e-3,
        sigma_cap: float = 0.05,
        sigma_tail: float = 0.03,
        sigma_parasitic: float = 0.25,
        layout_cap_shift: float = 0.15,
        parasitic_cap: float = 1.5e-13,
    ):
        self.vdd = float(vdd)
        self.vcm = float(vcm)
        self.vth_n = float(vth_n)
        self.vth_p = float(vth_p)
        self.kp_input = float(kp_input)
        self.kp_mirror = float(kp_mirror)
        self.lambda_ = float(lambda_)
        self.tail_current = float(tail_current)
        self.load_cap = float(load_cap)
        self.sigma_vth = float(sigma_vth)
        self.sigma_cap = float(sigma_cap)
        self.sigma_tail = float(sigma_tail)
        self.sigma_parasitic = float(sigma_parasitic)
        self.layout_cap_shift = float(layout_cap_shift)
        self.parasitic_cap = float(parasitic_cap)

        schematic_vars = [
            VariationVariable("ota.m1.vth", device="ota.m1"),
            VariationVariable("ota.m2.vth", device="ota.m2"),
            VariationVariable("ota.m3.vth", device="ota.m3"),
            VariationVariable("ota.m4.vth", device="ota.m4"),
            VariationVariable("ota.cl.value", device="ota.cl"),
            VariationVariable("ota.tail.value", device="ota.tail"),
        ]
        self._schematic_space = ProcessSpace(schematic_vars)
        self._postlayout_space = self._schematic_space.extended(
            [
                VariationVariable("ota.wire.out", kind="parasitic"),
                VariationVariable("ota.wire.d1", kind="parasitic"),
            ]
        )

    # ------------------------------------------------------------------
    def space(self, stage: Stage) -> ProcessSpace:
        if stage is Stage.SCHEMATIC:
            return self._schematic_space
        return self._postlayout_space

    # ------------------------------------------------------------------
    def simulate(self, stage: Stage, samples: np.ndarray, metric: str) -> np.ndarray:
        self._check_metric(metric)
        samples = self._check_samples(stage, samples)
        out = np.empty(samples.shape[0])
        for k, row in enumerate(samples):
            out[k] = self._simulate_one(stage, row)[metric]
        return out

    def _simulate_one(self, stage: Stage, sample: np.ndarray) -> dict:
        circuit = self._build_circuit(stage, sample)
        # One AC call computes the DC operating point internally and the
        # follower transfer at every grid frequency.
        frequencies = np.geomspace(1e3, 3e9, 40)
        ac = ac_analysis(circuit, frequencies, "VIN")
        follower_gain = ac.gain("out")

        # DC quantities from the low-frequency end of the sweep.
        from ..spice.dc import dc_operating_point

        op = dc_operating_point(circuit)
        offset = op.voltage("out") - self.vcm
        g0 = float(follower_gain[0])
        g0 = min(g0, 1.0 - 1e-9)
        dc_gain = g0 / (1.0 - g0)

        bandwidth = self._minus_3db_frequency(frequencies, follower_gain)
        return {
            "offset_voltage": offset,
            "dc_gain": dc_gain,
            "unity_gain_bandwidth": bandwidth,
        }

    @staticmethod
    def _minus_3db_frequency(frequencies: np.ndarray, gain: np.ndarray) -> float:
        """-3 dB point of the follower by log-log interpolation."""
        threshold = gain[0] / np.sqrt(2.0)
        below = np.flatnonzero(gain < threshold)
        if below.size == 0:
            return float(frequencies[-1])
        hi = int(below[0])
        if hi == 0:
            return float(frequencies[0])
        lo = hi - 1
        # Interpolate in log-frequency, linear gain.
        span = gain[hi] - gain[lo]
        frac = 0.5 if span == 0 else (threshold - gain[lo]) / span
        log_f = np.log10(frequencies[lo]) + frac * (
            np.log10(frequencies[hi]) - np.log10(frequencies[lo])
        )
        return float(10.0**log_f)

    def _build_circuit(self, stage: Stage, sample: np.ndarray) -> Circuit:
        vth = self.sigma_vth * sample[:4]
        cap = self.load_cap * (1.0 + self.sigma_cap * sample[4])
        tail = self.tail_current * (1.0 + self.sigma_tail * sample[5])

        circuit = Circuit("ota-follower")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=self.vdd))
        circuit.add(VoltageSource("VIN", "inp", "0", dc=self.vcm))
        circuit.add(CurrentSource("ITAIL", "s", "0", dc=tail))
        circuit.add(
            Mosfet("M1", "d1", "inp", "s", self.kp_input, self.vth_n + vth[0],
                   lambda_=self.lambda_)
        )
        # Unity feedback: the inverting input is the output node itself.
        circuit.add(
            Mosfet("M2", "out", "out", "s", self.kp_input, self.vth_n + vth[1],
                   lambda_=self.lambda_)
        )
        circuit.add(
            Mosfet("M3", "d1", "d1", "vdd", self.kp_mirror,
                   self.vth_p + vth[2], polarity="pmos", lambda_=self.lambda_)
        )
        circuit.add(
            Mosfet("M4", "out", "d1", "vdd", self.kp_mirror,
                   self.vth_p + vth[3], polarity="pmos", lambda_=self.lambda_)
        )

        if stage.is_late:
            cap = cap * (1.0 + self.layout_cap_shift)
            wire_out = self.parasitic_cap * (
                1.0 + self.sigma_parasitic * sample[6]
            )
            wire_d1 = 0.5 * self.parasitic_cap * (
                1.0 + self.sigma_parasitic * sample[7]
            )
            circuit.add(Capacitor("CWOUT", "out", "0", max(wire_out, 1e-18)))
            circuit.add(Capacitor("CWD1", "d1", "0", max(wire_d1, 1e-18)))
        circuit.add(Capacitor("CL", "out", "0", cap))
        return circuit
