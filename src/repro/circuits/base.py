"""Testbench abstraction: circuits with a schematic and a post-layout stage.

A testbench owns a process-variation space per design stage and knows how to
"simulate" (evaluate its behavioral performance functions on) a batch of
variation samples.  The two stages share the schematic variables -- the
post-layout space appends layout-parasitic variables after them -- so an
early-stage model's coefficients align one-to-one with the leading columns
of the late-stage basis, exactly the structure BMF's prior definition and
missing-prior handling (Sections III-A, IV-B) expect.
"""

from __future__ import annotations

import abc
import enum
from typing import Dict, Tuple

import numpy as np

from ..process import ProcessSpace

__all__ = ["Stage", "Testbench"]


class Stage(enum.Enum):
    """Design stage of the multistage AMS flow (Section I)."""

    SCHEMATIC = "schematic"
    POST_LAYOUT = "post_layout"

    @property
    def is_late(self) -> bool:
        return self is Stage.POST_LAYOUT


class Testbench(abc.ABC):
    """A circuit with per-stage variation spaces and performance metrics.

    Subclasses populate :attr:`metrics` and implement :meth:`space` and
    :meth:`simulate`; everything else (sampling, joint evaluation) is
    provided here.
    """

    name: str = "testbench"
    metrics: Tuple[str, ...] = ()

    @abc.abstractmethod
    def space(self, stage: Stage) -> ProcessSpace:
        """The variation space of the given stage."""

    @abc.abstractmethod
    def simulate(self, stage: Stage, samples: np.ndarray, metric: str) -> np.ndarray:
        """Evaluate one performance metric on a batch of variation samples.

        Parameters
        ----------
        stage:
            Which design stage's netlist to evaluate.
        samples:
            Array of shape ``(K, R_stage)`` over that stage's space.
        metric:
            One of :attr:`metrics`.

        Returns
        -------
        numpy.ndarray
            Metric values of shape ``(K,)``.
        """

    # ------------------------------------------------------------------
    def simulate_all(
        self, stage: Stage, samples: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Evaluate every metric on the same batch of samples."""
        return {metric: self.simulate(stage, samples, metric) for metric in self.metrics}

    def sample(
        self, stage: Stage, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw variation samples for the given stage."""
        return self.space(stage).sample(count, rng)

    def num_vars(self, stage: Stage) -> int:
        """Dimensionality of the stage's variation space."""
        return self.space(stage).size

    def _check_metric(self, metric: str) -> None:
        if metric not in self.metrics:
            raise ValueError(
                f"unknown metric {metric!r} for {self.name}; "
                f"available: {self.metrics}"
            )

    def _check_samples(self, stage: Stage, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim == 1:
            samples = samples[np.newaxis, :]
        expected = self.num_vars(stage)
        if samples.ndim != 2 or samples.shape[1] != expected:
            raise ValueError(
                f"{self.name} at stage {stage.value} expects samples of "
                f"shape (K, {expected}), got {samples.shape}"
            )
        return samples
