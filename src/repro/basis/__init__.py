"""Orthonormal polynomial bases over standard-normal variables.

Implements the basis machinery of Section II-A of the paper: univariate
orthonormal Hermite polynomials, sparse multi-index sets, the multivariate
product basis, and design-matrix assembly (eq. 9).
"""

from .hermite import (
    hermite_coefficients,
    hermite_he,
    hermite_orthonormal,
    hermite_orthonormal_all,
)
from .multiindex import (
    MultiIndex,
    index_set_size,
    linear_index_set,
    total_degree_index_set,
    validate_index_set,
)
from .multivariate import OrthonormalBasis

__all__ = [
    "MultiIndex",
    "OrthonormalBasis",
    "hermite_coefficients",
    "hermite_he",
    "hermite_orthonormal",
    "hermite_orthonormal_all",
    "index_set_size",
    "linear_index_set",
    "total_degree_index_set",
    "validate_index_set",
]
