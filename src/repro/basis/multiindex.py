"""Multi-index sets for multivariate orthonormal polynomial bases.

A multivariate basis function is a product of univariate orthonormal
polynomials, one per variable:

    g_m(x) = prod_r  he_{a_r}(x_r)

where the multi-index ``a = (a_1, ..., a_R)`` gives the degree in each
variable.  The basis in eq. (5) of the paper corresponds to the *total
degree* index set ``{a : sum(a) <= p}`` enumerated in graded order.

For the high-dimensional linear models used in the paper's experiments
(R ~ 10^3-10^5, degree 1), index sets are represented sparsely: each
multi-index is a tuple of ``(variable, degree)`` pairs for its nonzero
entries.  This keeps a linear basis in 66 000 variables at 66 001 small
tuples instead of a dense (66001, 66000) array.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "MultiIndex",
    "linear_index_set",
    "total_degree_index_set",
    "index_set_size",
    "validate_index_set",
]

# Sparse multi-index: sorted tuple of (variable, degree) pairs with degree >= 1.
# The empty tuple is the constant basis function g(x) = 1.
MultiIndex = Tuple[Tuple[int, int], ...]


def linear_index_set(num_vars: int, include_constant: bool = True) -> List[MultiIndex]:
    """Return the index set of a linear model in ``num_vars`` variables.

    The resulting basis is ``{1, x_1, x_2, ..., x_R}`` (the paper's RO and
    SRAM experiments use exactly this model form).
    """
    if num_vars < 0:
        raise ValueError(f"num_vars must be non-negative, got {num_vars}")
    indices: List[MultiIndex] = [()] if include_constant else []
    indices.extend(((r, 1),) for r in range(num_vars))
    return indices


def total_degree_index_set(num_vars: int, degree: int) -> List[MultiIndex]:
    """Return all multi-indices with total degree ``<= degree``.

    Enumerated in graded lexicographic order: the constant term first, then
    all degree-1 terms, then degree-2 terms, matching eq. (5) of the paper
    for the 2-D case.

    Warning: the set size is ``C(num_vars + degree, degree)`` which grows
    quickly; intended for moderate dimensionality (quadratic models in a few
    hundred variables at most).
    """
    if num_vars < 0:
        raise ValueError(f"num_vars must be non-negative, got {num_vars}")
    if degree < 0:
        raise ValueError(f"degree must be non-negative, got {degree}")
    indices: List[MultiIndex] = [()]
    for total in range(1, degree + 1):
        indices.extend(_indices_of_total_degree(num_vars, total))
    return indices


def _indices_of_total_degree(num_vars: int, total: int) -> Iterable[MultiIndex]:
    """Yield sparse multi-indices of exact total degree ``total``.

    Enumerates by choosing the support (set of active variables) and then
    the composition of ``total`` into that many positive parts.
    """
    max_support = min(num_vars, total)
    for support_size in range(1, max_support + 1):
        for support in itertools.combinations(range(num_vars), support_size):
            for parts in _compositions(total, support_size):
                yield tuple(zip(support, parts))


def _compositions(total: int, parts: int) -> Iterable[Tuple[int, ...]]:
    """Yield all compositions of ``total`` into ``parts`` positive integers."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def index_set_size(num_vars: int, degree: int) -> int:
    """Size of the total-degree index set: ``C(num_vars + degree, degree)``."""
    from math import comb

    return comb(num_vars + degree, degree)


def validate_index_set(indices: Sequence[MultiIndex], num_vars: int) -> None:
    """Raise ``ValueError`` if any multi-index is malformed or out of range.

    Checks that variables are unique, sorted, within ``[0, num_vars)`` and
    that all degrees are positive.
    """
    seen = set()
    for idx in indices:
        if idx in seen:
            raise ValueError(f"duplicate multi-index {idx}")
        seen.add(idx)
        variables = [v for v, _ in idx]
        if variables != sorted(set(variables)):
            raise ValueError(f"multi-index {idx} has unsorted or repeated variables")
        for var, deg in idx:
            if not 0 <= var < num_vars:
                raise ValueError(
                    f"multi-index {idx} references variable {var} outside "
                    f"[0, {num_vars})"
                )
            if deg < 1:
                raise ValueError(f"multi-index {idx} has non-positive degree {deg}")
