"""Orthonormal probabilists' Hermite polynomials.

The paper (Section II-A, eqs. 3-5) adopts polynomials that are orthonormal
with respect to the standard normal density:

    E[g_i(x) * g_j(x)] = delta_ij   for x ~ N(0, 1).

For a single standard-normal variable these are the probabilists' Hermite
polynomials ``He_n`` normalized by ``sqrt(n!)``:

    g_1(x) = 1
    g_2(x) = x
    g_3(x) = (x^2 - 1) / sqrt(2)
    ...

which matches eq. (4) of the paper exactly.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "hermite_he",
    "hermite_orthonormal",
    "hermite_orthonormal_all",
    "hermite_coefficients",
]


def hermite_he(n: int, x: np.ndarray) -> np.ndarray:
    """Evaluate the (unnormalized) probabilists' Hermite polynomial He_n.

    Uses the stable three-term recurrence

        He_0(x) = 1
        He_1(x) = x
        He_{k+1}(x) = x * He_k(x) - k * He_{k-1}(x).

    Parameters
    ----------
    n:
        Polynomial degree, ``n >= 0``.
    x:
        Evaluation points (any shape); scalars are promoted.

    Returns
    -------
    numpy.ndarray
        ``He_n(x)`` with the same shape as ``x``.
    """
    if n < 0:
        raise ValueError(f"degree must be non-negative, got {n}")
    x = np.asarray(x, dtype=float)
    if n == 0:
        return np.ones_like(x)
    if n == 1:
        return x.copy()
    prev = np.ones_like(x)
    curr = x.copy()
    for k in range(1, n):
        prev, curr = curr, x * curr - k * prev
    return curr


def hermite_orthonormal(n: int, x: np.ndarray) -> np.ndarray:
    """Evaluate the orthonormal Hermite polynomial ``He_n(x) / sqrt(n!)``.

    Satisfies ``E[g_n(x)^2] = 1`` for ``x ~ N(0, 1)``.
    """
    return hermite_he(n, x) / math.sqrt(math.factorial(n))


def hermite_orthonormal_all(max_degree: int, x: np.ndarray) -> np.ndarray:
    """Evaluate all orthonormal Hermite polynomials up to ``max_degree``.

    The full set is computed in a single recurrence sweep, which is much
    cheaper than calling :func:`hermite_orthonormal` once per degree when
    assembling design matrices.

    Parameters
    ----------
    max_degree:
        Highest polynomial degree to evaluate (inclusive).
    x:
        Evaluation points of shape ``(K,)`` (or any shape).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(max_degree + 1,) + x.shape`` whose ``[d]`` slice is
        the orthonormal polynomial of degree ``d`` evaluated at ``x``.
    """
    if max_degree < 0:
        raise ValueError(f"max_degree must be non-negative, got {max_degree}")
    x = np.asarray(x, dtype=float)
    out = np.empty((max_degree + 1,) + x.shape, dtype=float)
    out[0] = 1.0
    if max_degree >= 1:
        out[1] = x
    # Unnormalized recurrence first, then normalize degree-by-degree.
    for k in range(1, max_degree):
        out[k + 1] = x * out[k] - k * out[k - 1]
    for d in range(2, max_degree + 1):
        out[d] /= math.sqrt(math.factorial(d))
    return out


def hermite_coefficients(n: int) -> np.ndarray:
    """Return the monomial coefficients of the orthonormal Hermite poly.

    ``hermite_coefficients(n)[k]`` is the coefficient of ``x**k`` in
    ``He_n(x) / sqrt(n!)``.  Mostly useful for tests and for exporting
    models into plain polynomial form.
    """
    if n < 0:
        raise ValueError(f"degree must be non-negative, got {n}")
    prev = np.array([1.0])
    if n == 0:
        return prev
    curr = np.array([0.0, 1.0])
    for k in range(1, n):
        # He_{k+1} = x * He_k - k * He_{k-1}
        shifted = np.concatenate(([0.0], curr))
        padded_prev = np.concatenate((prev, np.zeros(shifted.size - prev.size)))
        prev, curr = curr, shifted - k * padded_prev
    return curr / math.sqrt(math.factorial(n))
