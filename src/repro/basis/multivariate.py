"""Multivariate orthonormal polynomial basis (eqs. 2-5 of the paper).

:class:`OrthonormalBasis` bundles a multi-index set over ``num_vars``
standard-normal variables and evaluates the design matrix **G** of eq. (9):

    G[k, m] = g_m(x^(k))

Each basis function is a product of univariate orthonormal Hermite
polynomials; orthonormality of the product set follows from independence of
the variables.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

import numpy as np

from ..runtime.cache import design_cache, fingerprint_array
from ..runtime.metrics import metrics
from .hermite import hermite_orthonormal_all
from .multiindex import (
    MultiIndex,
    linear_index_set,
    total_degree_index_set,
    validate_index_set,
)

__all__ = ["OrthonormalBasis"]


class OrthonormalBasis:
    """A set of multivariate orthonormal polynomial basis functions.

    Parameters
    ----------
    num_vars:
        Number of underlying standard-normal variables ``R``.
    indices:
        Sparse multi-index set defining the basis functions.  Each entry is
        a tuple of ``(variable, degree)`` pairs; the empty tuple is the
        constant function.  Use the classmethod constructors for common sets.

    Notes
    -----
    The basis is orthonormal under ``x ~ N(0, I)``:

        E[g_i(x) g_j(x)] = delta_ij

    which the test suite verifies by Monte Carlo quadrature.
    """

    def __init__(self, num_vars: int, indices: Sequence[MultiIndex]):
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        validate_index_set(indices, num_vars)
        self.num_vars = int(num_vars)
        self.indices: List[MultiIndex] = list(indices)
        self._max_degree = max(
            (deg for idx in self.indices for _, deg in idx), default=0
        )
        self._cache_token: Optional[str] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, num_vars: int, include_constant: bool = True) -> "OrthonormalBasis":
        """Linear basis ``{1, x_1, ..., x_R}`` used by the paper's examples."""
        return cls(num_vars, linear_index_set(num_vars, include_constant))

    @classmethod
    def total_degree(cls, num_vars: int, degree: int) -> "OrthonormalBasis":
        """All products with total degree at most ``degree`` (eq. 5 order)."""
        return cls(num_vars, total_degree_index_set(num_vars, degree))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of basis functions ``M``."""
        return len(self.indices)

    @property
    def max_degree(self) -> int:
        """Highest univariate degree appearing in any basis function."""
        return self._max_degree

    def is_linear(self) -> bool:
        """True if every basis function has total degree <= 1."""
        return self._max_degree <= 1 and all(len(idx) <= 1 for idx in self.indices)

    def total_degrees(self) -> np.ndarray:
        """Total degree of each basis function, shape ``(M,)``."""
        return np.array([sum(d for _, d in idx) for idx in self.indices], dtype=int)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrthonormalBasis(num_vars={self.num_vars}, size={self.size}, "
            f"max_degree={self._max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrthonormalBasis):
            return NotImplemented
        return self.num_vars == other.num_vars and self.indices == other.indices

    def cache_token(self) -> str:
        """Value-identity digest of the basis (design-cache key component).

        Two independently constructed but equal bases share a token, so
        cached design matrices are reused across instances.
        """
        token = self._cache_token
        if token is None:
            payload = repr((self.num_vars, self.indices)).encode()
            token = hashlib.blake2b(payload, digest_size=16).hexdigest()
            self._cache_token = token
        return token

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def design_matrix(self, x: np.ndarray, columns: Optional[Sequence[int]] = None) -> np.ndarray:
        """Assemble the design matrix **G** of eq. (9).

        Parameters
        ----------
        x:
            Sample matrix of shape ``(K, num_vars)`` (a single sample of
            shape ``(num_vars,)`` is promoted to ``(1, num_vars)``).
        columns:
            Optional subset of basis-function indices to evaluate; defaults
            to all ``M`` functions.

        Returns
        -------
        numpy.ndarray
            ``G`` of shape ``(K, len(columns))`` with
            ``G[k, j] = g_{columns[j]}(x[k])``.
        """
        x = self._coerce_samples(x)
        wanted = self._resolve_columns(columns)

        cache = design_cache()
        if cache is None or x.shape[0] * max(len(wanted), 1) < cache.min_result_cells:
            return self._assemble(x, wanted)
        signature = None if columns is None else tuple(wanted)
        key = (self.cache_token(), fingerprint_array(x), signature)
        return cache.get_or_compute(key, lambda: self._assemble(x, wanted))

    def _coerce_samples(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis, :]
        if x.ndim != 2 or x.shape[1] != self.num_vars:
            raise ValueError(
                f"expected samples of shape (K, {self.num_vars}), got {x.shape}"
            )
        return x

    def _resolve_columns(self, columns: Optional[Sequence[int]]) -> List[int]:
        """Materialize ``columns`` once, normalizing negative indices.

        A generator argument must be consumed exactly once: both table
        sizing and assembly below iterate the result, so everything works
        off this single materialized list.
        """
        if columns is None:
            return list(range(self.size))
        wanted: List[int] = []
        for c in columns:
            c = int(c)
            if c < 0:
                c += self.size
            if not 0 <= c < self.size:
                raise IndexError(
                    f"column {c} out of range for basis of size {self.size}"
                )
            wanted.append(c)
        return wanted

    def _assemble(self, x: np.ndarray, wanted: List[int]) -> np.ndarray:
        with metrics.timer("design_matrix"):
            metrics.increment("design_matrix.calls")
            metrics.increment("design_matrix.cells", x.shape[0] * len(wanted))
            if self.is_linear():
                return self._linear_design_matrix(x, wanted)
            return self._design_matrix_vectorized(x, wanted)

    # Runs shorter than this are cheaper through the batched gather path
    # than through an extra slice operation.
    _MIN_RUN = 4

    def _design_matrix_vectorized(self, x: np.ndarray, wanted: List[int]) -> np.ndarray:
        """General-path assembly as grouped products of Hermite tables.

        The univariate orthonormal Hermite tables are evaluated in one
        batched recurrence over every active variable, only up to the
        highest degree the *selected* columns actually use, and stacked
        over a shared ones row with a ``(degree, variable)``-major layout.
        Each output column is a product of rows of that table; columns
        whose table rows form consecutive runs with a shared second factor
        (the entire basis in its natural graded order does) are emitted as
        contiguous slice products, and irregular leftovers fall back to a
        batched gather-product.  Either way the former per-column Python
        loop becomes O(active vars + runs) NumPy calls.
        """
        num_samples = x.shape[0]
        num_cols = len(wanted)
        if num_cols == 0:
            return np.ones((num_samples, 0), dtype=float)

        max_deg: dict = {}
        depth = 1
        for m in wanted:
            idx = self.indices[m]
            depth = max(depth, len(idx))
            for var, deg in idx:
                if deg > max_deg.get(var, 0):
                    max_deg[var] = deg

        active = sorted(max_deg)
        table_degree = max(max_deg.values(), default=0)
        if table_degree == 0:
            return np.ones((num_samples, num_cols), dtype=float)
        # Batched recurrence over all active variables at once:
        # (table_degree + 1, K, V) -> rows laid out (degree, variable)-major.
        batch = hermite_orthonormal_all(table_degree, x[:, active])
        num_active = len(active)
        stacked = np.empty(
            (1 + table_degree * num_active, num_samples), dtype=float
        )
        stacked[0] = 1.0
        stacked[1:] = batch[1:].transpose(0, 2, 1).reshape(-1, num_samples)
        position = {var: p for p, var in enumerate(active)}

        gather = np.zeros((num_cols, depth), dtype=np.intp)
        for j, m in enumerate(wanted):
            for level, (var, deg) in enumerate(self.indices[m]):
                gather[j, level] = 1 + (deg - 1) * num_active + position[var]

        out = np.empty((num_cols, num_samples), dtype=float)
        leftover = self._emit_slice_runs(stacked, gather, out)
        if leftover:
            rows = np.asarray(leftover, dtype=np.intp)
            product = stacked[gather[rows, 0]]
            for level in range(1, depth):
                product *= stacked[gather[rows, level]]
            out[rows] = product
        return out.T

    def _emit_slice_runs(
        self, stacked: np.ndarray, gather: np.ndarray, out: np.ndarray
    ) -> List[int]:
        """Write slice-decomposable column runs into ``out``.

        A run is a block of consecutive output columns that are each the
        product of exactly one stepping table row (consecutive rows of
        ``stacked``) and one shared fixed row, with any remaining factor
        levels padded by the ones row.  Returns the column positions that
        did not fit a run (to be handled by the gather fallback).
        """
        num_cols, depth = gather.shape
        g0 = gather[:, 0]
        g1 = gather[:, 1] if depth > 1 else np.zeros(num_cols, dtype=np.intp)
        if depth > 2:
            shallow = (gather[:, 2:] == 0).all(axis=1)
        else:
            shallow = np.ones(num_cols, dtype=bool)
        if num_cols > 1:
            pair_ok = shallow[1:] & shallow[:-1]
            step_a = (np.diff(g0) == 1) & (g1[1:] == g1[:-1]) & pair_ok
            step_b = (g0[1:] == g0[:-1]) & (np.diff(g1) == 1) & pair_ok
        else:
            step_a = step_b = np.zeros(0, dtype=bool)

        leftover: List[int] = []
        j = 0
        while j < num_cols:
            if not shallow[j]:
                leftover.append(j)
                j += 1
                continue
            length_a = 1
            while j + length_a < num_cols and step_a[j + length_a - 1]:
                length_a += 1
            length_b = 1
            while j + length_b < num_cols and step_b[j + length_b - 1]:
                length_b += 1
            length = max(length_a, length_b)
            if length < self._MIN_RUN:
                leftover.append(j)
                j += 1
                continue
            if length_a >= length_b:
                start, fixed = g0[j], g1[j]
            else:
                start, fixed = g1[j], g0[j]
            stepping = stacked[start : start + length]
            if fixed == 0:
                out[j : j + length] = stepping
            else:
                np.multiply(stepping, stacked[fixed], out=out[j : j + length])
            j += length
        return leftover

    def _design_matrix_loop(
        self, x: np.ndarray, columns: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Reference per-column assembly (the pre-vectorization algorithm).

        Kept for equivalence tests and as the baseline of the
        design-matrix benchmark; not used on any production path.
        """
        x = self._coerce_samples(x)
        wanted = self._resolve_columns(columns)
        num_samples = x.shape[0]
        if self.is_linear():
            return self._linear_design_matrix(x, wanted)
        active_vars = sorted({v for m in wanted for v, _ in self.indices[m]})
        per_var = {
            v: hermite_orthonormal_all(self._max_degree, x[:, v]) for v in active_vars
        }
        out = np.empty((num_samples, len(wanted)), dtype=float)
        for j, m in enumerate(wanted):
            col = np.ones(num_samples, dtype=float)
            for var, deg in self.indices[m]:
                col = col * per_var[var][deg]
            out[:, j] = col
        return out

    def _linear_design_matrix(self, x: np.ndarray, wanted: List[int]) -> np.ndarray:
        """Fast path for linear bases: columns are 1 or a raw variable."""
        out = np.empty((x.shape[0], len(wanted)), dtype=float)
        const_pos: List[int] = []
        var_pos: List[int] = []
        var_ids: List[int] = []
        for j, m in enumerate(wanted):
            idx = self.indices[m]
            if not idx:
                const_pos.append(j)
            else:
                var_pos.append(j)
                var_ids.append(idx[0][0])
        if const_pos:
            out[:, const_pos] = 1.0
        if var_pos:
            out[:, var_pos] = x[:, var_ids]
        return out

    def evaluate(self, coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate ``sum_m alpha_m g_m(x)`` for each row of ``x`` (eq. 2)."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self.size,):
            raise ValueError(
                f"expected {self.size} coefficients, got shape {coefficients.shape}"
            )
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        design = self.design_matrix(x)
        values = design @ coefficients
        return values[0] if squeeze else values

    # ------------------------------------------------------------------
    # Structure helpers used by prior mapping (Section IV-A)
    # ------------------------------------------------------------------
    def index_of(self, index: MultiIndex) -> int:
        """Position of a multi-index in the basis (raises if absent)."""
        try:
            return self.indices.index(index)
        except ValueError:
            raise KeyError(f"multi-index {index} not in basis") from None

    def restricted_to(self, columns: Sequence[int]) -> "OrthonormalBasis":
        """New basis containing only the selected basis functions."""
        return OrthonormalBasis(self.num_vars, [self.indices[c] for c in columns])
