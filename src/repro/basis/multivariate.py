"""Multivariate orthonormal polynomial basis (eqs. 2-5 of the paper).

:class:`OrthonormalBasis` bundles a multi-index set over ``num_vars``
standard-normal variables and evaluates the design matrix **G** of eq. (9):

    G[k, m] = g_m(x^(k))

Each basis function is a product of univariate orthonormal Hermite
polynomials; orthonormality of the product set follows from independence of
the variables.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.contracts import returns_array
from ..runtime.cache import design_cache, fingerprint_array
from ..runtime.metrics import metrics
from .hermite import hermite_orthonormal_all
from .multiindex import (
    MultiIndex,
    linear_index_set,
    total_degree_index_set,
    validate_index_set,
)

__all__ = ["OrthonormalBasis"]


class OrthonormalBasis:
    """A set of multivariate orthonormal polynomial basis functions.

    Parameters
    ----------
    num_vars:
        Number of underlying standard-normal variables ``R``.
    indices:
        Sparse multi-index set defining the basis functions.  Each entry is
        a tuple of ``(variable, degree)`` pairs; the empty tuple is the
        constant function.  Use the classmethod constructors for common sets.

    Notes
    -----
    The basis is orthonormal under ``x ~ N(0, I)``:

        E[g_i(x) g_j(x)] = delta_ij

    which the test suite verifies by Monte Carlo quadrature.
    """

    def __init__(self, num_vars: int, indices: Sequence[MultiIndex]):
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        validate_index_set(indices, num_vars)
        self.num_vars = int(num_vars)
        self.indices: List[MultiIndex] = list(indices)
        self._max_degree = max(
            (deg for idx in self.indices for _, deg in idx), default=0
        )
        self._cache_token: Optional[str] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, num_vars: int, include_constant: bool = True) -> "OrthonormalBasis":
        """Linear basis ``{1, x_1, ..., x_R}`` used by the paper's examples."""
        return cls(num_vars, linear_index_set(num_vars, include_constant))

    @classmethod
    def total_degree(cls, num_vars: int, degree: int) -> "OrthonormalBasis":
        """All products with total degree at most ``degree`` (eq. 5 order)."""
        return cls(num_vars, total_degree_index_set(num_vars, degree))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of basis functions ``M``."""
        return len(self.indices)

    @property
    def max_degree(self) -> int:
        """Highest univariate degree appearing in any basis function."""
        return self._max_degree

    def is_linear(self) -> bool:
        """True if every basis function has total degree <= 1."""
        return self._max_degree <= 1 and all(len(idx) <= 1 for idx in self.indices)

    def total_degrees(self) -> np.ndarray:
        """Total degree of each basis function, shape ``(M,)``."""
        return np.array([sum(d for _, d in idx) for idx in self.indices], dtype=int)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrthonormalBasis(num_vars={self.num_vars}, size={self.size}, "
            f"max_degree={self._max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrthonormalBasis):
            return NotImplemented
        return self.num_vars == other.num_vars and self.indices == other.indices

    def cache_token(self) -> str:
        """Value-identity digest of the basis (design-cache key component).

        Two independently constructed but equal bases share a token, so
        cached design matrices are reused across instances.
        """
        token = self._cache_token
        if token is None:
            payload = repr((self.num_vars, self.indices)).encode()
            token = hashlib.blake2b(payload, digest_size=16).hexdigest()
            self._cache_token = token
        return token

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @returns_array(dtype=np.float64, ndim=2, c_contiguous=True, name="design matrix G")
    def design_matrix(self, x: np.ndarray, columns: Optional[Sequence[int]] = None) -> np.ndarray:
        """Assemble the design matrix **G** of eq. (9).

        Parameters
        ----------
        x:
            Sample matrix of shape ``(K, num_vars)`` (a single sample of
            shape ``(num_vars,)`` is promoted to ``(1, num_vars)``).
        columns:
            Optional subset of basis-function indices to evaluate; defaults
            to all ``M`` functions.

        Returns
        -------
        numpy.ndarray
            ``G`` of shape ``(K, len(columns))`` with
            ``G[k, j] = g_{columns[j]}(x[k])``.
        """
        x = self._coerce_samples(x)
        wanted = self._resolve_columns(columns)

        cache = design_cache()
        if cache is None or x.shape[0] * max(len(wanted), 1) < cache.min_result_cells:
            return self._assemble(x, wanted)
        signature = None if columns is None else tuple(wanted)
        key = (self.cache_token(), fingerprint_array(x), signature)
        return cache.get_or_compute(key, lambda: self._assemble(x, wanted))

    def _coerce_samples(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis, :]
        if x.ndim != 2 or x.shape[1] != self.num_vars:
            raise ValueError(
                f"expected samples of shape (K, {self.num_vars}), got {x.shape}"
            )
        return x

    def _resolve_columns(self, columns: Optional[Sequence[int]]) -> List[int]:
        """Materialize ``columns`` once, normalizing negative indices.

        A generator argument must be consumed exactly once: both table
        sizing and assembly below iterate the result, so everything works
        off this single materialized list.
        """
        if columns is None:
            return list(range(self.size))
        wanted: List[int] = []
        for c in columns:
            c = int(c)
            if c < 0:
                c += self.size
            if not 0 <= c < self.size:
                raise IndexError(
                    f"column {c} out of range for basis of size {self.size}"
                )
            wanted.append(c)
        return wanted

    def _assemble(self, x: np.ndarray, wanted: List[int]) -> np.ndarray:
        with metrics.timer("design_matrix"):
            metrics.increment("design_matrix.calls")
            metrics.increment("design_matrix.cells", x.shape[0] * len(wanted))
            if self.is_linear():
                return self._linear_design_matrix(x, wanted)
            return self._design_matrix_vectorized(x, wanted)

    # Sample rows are processed in blocks of this size so the per-block
    # gather buffers (2 x block x M doubles) stay inside the L2 cache;
    # larger blocks push the gather traffic out to L3/DRAM and measurably
    # slow the assembly down on memory-bandwidth-bound hosts.
    _ROW_BLOCK = 8

    def _design_matrix_vectorized(self, x: np.ndarray, wanted: List[int]) -> np.ndarray:
        """General-path assembly as blocked gather-products of Hermite tables.

        The univariate orthonormal Hermite tables are evaluated in one
        batched recurrence over every active variable, only up to the
        highest degree the *selected* columns actually use, and stacked
        next to a shared ones column with a ``(degree, variable)``-major
        column layout, samples along the leading axis.  Each output column
        is a product of ``depth`` columns of that table (padded with the
        ones column for lower-order terms); the product is formed for all
        columns at once, one small block of sample rows at a time, by
        gathering the factor columns into reused scratch buffers and
        multiplying straight into the matching rows of the C-contiguous
        result.  The former per-column Python loop becomes
        O(depth * K / block) NumPy calls, every write lands contiguously,
        and no final transpose copy is needed to satisfy the C-contiguity
        contract.
        """
        num_samples = x.shape[0]
        num_cols = len(wanted)
        if num_cols == 0:
            return np.ones((num_samples, 0), dtype=float)

        max_deg: dict = {}
        depth = 1
        for m in wanted:
            idx = self.indices[m]
            depth = max(depth, len(idx))
            for var, deg in idx:
                if deg > max_deg.get(var, 0):
                    max_deg[var] = deg

        active = sorted(max_deg)
        table_degree = max(max_deg.values(), default=0)
        if table_degree == 0:
            return np.ones((num_samples, num_cols), dtype=float)
        # Batched recurrence over all active variables at once:
        # (table_degree + 1, K, V) -> columns laid out (degree, variable)-
        # major with samples as the leading axis.
        batch = hermite_orthonormal_all(table_degree, x[:, active])
        num_active = len(active)
        stacked = np.empty(
            (num_samples, 1 + table_degree * num_active), dtype=float
        )
        stacked[:, 0] = 1.0
        stacked[:, 1:] = batch[1:].transpose(1, 0, 2).reshape(num_samples, -1)
        position = {var: p for p, var in enumerate(active)}

        gather = np.zeros((num_cols, depth), dtype=np.intp)
        for j, m in enumerate(wanted):
            for level, (var, deg) in enumerate(self.indices[m]):
                gather[j, level] = 1 + (deg - 1) * num_active + position[var]

        out = np.empty((num_samples, num_cols), dtype=float)
        block = self._ROW_BLOCK
        product = np.empty((block, num_cols), dtype=float)
        factor = np.empty((block, num_cols), dtype=float)
        first = gather[:, 0]
        middle = [gather[:, level] for level in range(1, depth - 1)]
        last = gather[:, depth - 1] if depth > 1 else None
        for k0 in range(0, num_samples, block):
            k1 = min(k0 + block, num_samples)
            rows = k1 - k0
            sub = stacked[k0:k1]
            if last is None:
                np.take(sub, first, axis=1, out=out[k0:k1])
                continue
            np.take(sub, first, axis=1, out=product[:rows])
            for level_cols in middle:
                np.take(sub, level_cols, axis=1, out=factor[:rows])
                product[:rows] *= factor[:rows]
            np.take(sub, last, axis=1, out=factor[:rows])
            np.multiply(product[:rows], factor[:rows], out=out[k0:k1])
        return out

    def _design_matrix_loop(
        self, x: np.ndarray, columns: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Reference per-column assembly (the pre-vectorization algorithm).

        Kept for equivalence tests and as the baseline of the
        design-matrix benchmark; not used on any production path.
        """
        x = self._coerce_samples(x)
        wanted = self._resolve_columns(columns)
        num_samples = x.shape[0]
        if self.is_linear():
            return self._linear_design_matrix(x, wanted)
        active_vars = sorted({v for m in wanted for v, _ in self.indices[m]})
        per_var = {
            v: hermite_orthonormal_all(self._max_degree, x[:, v]) for v in active_vars
        }
        out = np.empty((num_samples, len(wanted)), dtype=float)
        for j, m in enumerate(wanted):
            col = np.ones(num_samples, dtype=float)
            for var, deg in self.indices[m]:
                col = col * per_var[var][deg]
            out[:, j] = col
        return out

    def _linear_design_matrix(self, x: np.ndarray, wanted: List[int]) -> np.ndarray:
        """Fast path for linear bases: columns are 1 or a raw variable."""
        out = np.empty((x.shape[0], len(wanted)), dtype=float)
        const_pos: List[int] = []
        var_pos: List[int] = []
        var_ids: List[int] = []
        for j, m in enumerate(wanted):
            idx = self.indices[m]
            if not idx:
                const_pos.append(j)
            else:
                var_pos.append(j)
                var_ids.append(idx[0][0])
        if const_pos:
            out[:, const_pos] = 1.0
        if var_pos:
            out[:, var_pos] = x[:, var_ids]
        return out

    def evaluate(self, coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate ``sum_m alpha_m g_m(x)`` for each row of ``x`` (eq. 2)."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self.size,):
            raise ValueError(
                f"expected {self.size} coefficients, got shape {coefficients.shape}"
            )
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        design = self.design_matrix(x)
        values = design @ coefficients
        return values[0] if squeeze else values

    # ------------------------------------------------------------------
    # Structure helpers used by prior mapping (Section IV-A)
    # ------------------------------------------------------------------
    def index_of(self, index: MultiIndex) -> int:
        """Position of a multi-index in the basis (raises if absent)."""
        try:
            return self.indices.index(index)
        except ValueError:
            raise KeyError(f"multi-index {index} not in basis") from None

    def restricted_to(self, columns: Sequence[int]) -> "OrthonormalBasis":
        """New basis containing only the selected basis functions."""
        return OrthonormalBasis(self.num_vars, [self.indices[c] for c in columns])
