"""Multivariate orthonormal polynomial basis (eqs. 2-5 of the paper).

:class:`OrthonormalBasis` bundles a multi-index set over ``num_vars``
standard-normal variables and evaluates the design matrix **G** of eq. (9):

    G[k, m] = g_m(x^(k))

Each basis function is a product of univariate orthonormal Hermite
polynomials; orthonormality of the product set follows from independence of
the variables.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.contracts import check_array
from ..backends import get_backend, resolve_dtype
from ..runtime.cache import design_cache, design_key
from ..runtime.metrics import metrics
from .hermite import hermite_orthonormal_all
from .multiindex import (
    MultiIndex,
    linear_index_set,
    total_degree_index_set,
    validate_index_set,
)

__all__ = ["OrthonormalBasis"]


class OrthonormalBasis:
    """A set of multivariate orthonormal polynomial basis functions.

    Parameters
    ----------
    num_vars:
        Number of underlying standard-normal variables ``R``.
    indices:
        Sparse multi-index set defining the basis functions.  Each entry is
        a tuple of ``(variable, degree)`` pairs; the empty tuple is the
        constant function.  Use the classmethod constructors for common sets.

    Notes
    -----
    The basis is orthonormal under ``x ~ N(0, I)``:

        E[g_i(x) g_j(x)] = delta_ij

    which the test suite verifies by Monte Carlo quadrature.
    """

    def __init__(self, num_vars: int, indices: Sequence[MultiIndex]):
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        validate_index_set(indices, num_vars)
        self.num_vars = int(num_vars)
        self.indices: List[MultiIndex] = list(indices)
        self._max_degree = max(
            (deg for idx in self.indices for _, deg in idx), default=0
        )
        self._cache_token: Optional[str] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, num_vars: int, include_constant: bool = True) -> "OrthonormalBasis":
        """Linear basis ``{1, x_1, ..., x_R}`` used by the paper's examples."""
        return cls(num_vars, linear_index_set(num_vars, include_constant))

    @classmethod
    def total_degree(cls, num_vars: int, degree: int) -> "OrthonormalBasis":
        """All products with total degree at most ``degree`` (eq. 5 order)."""
        return cls(num_vars, total_degree_index_set(num_vars, degree))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of basis functions ``M``."""
        return len(self.indices)

    @property
    def max_degree(self) -> int:
        """Highest univariate degree appearing in any basis function."""
        return self._max_degree

    def is_linear(self) -> bool:
        """True if every basis function has total degree <= 1."""
        return self._max_degree <= 1 and all(len(idx) <= 1 for idx in self.indices)

    def total_degrees(self) -> np.ndarray:
        """Total degree of each basis function, shape ``(M,)``."""
        return np.array([sum(d for _, d in idx) for idx in self.indices], dtype=int)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrthonormalBasis(num_vars={self.num_vars}, size={self.size}, "
            f"max_degree={self._max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrthonormalBasis):
            return NotImplemented
        return self.num_vars == other.num_vars and self.indices == other.indices

    def cache_token(self) -> str:
        """Value-identity digest of the basis (design-cache key component).

        Two independently constructed but equal bases share a token, so
        cached design matrices are reused across instances.
        """
        token = self._cache_token
        if token is None:
            payload = repr((self.num_vars, self.indices)).encode()
            token = hashlib.blake2b(payload, digest_size=16).hexdigest()
            self._cache_token = token
        return token

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def design_matrix(
        self,
        x: np.ndarray,
        columns: Optional[Sequence[int]] = None,
        dtype: Optional[object] = None,
    ) -> np.ndarray:
        """Assemble the design matrix **G** of eq. (9).

        Parameters
        ----------
        x:
            Sample matrix of shape ``(K, num_vars)`` (a single sample of
            shape ``(num_vars,)`` is promoted to ``(1, num_vars)``).
        columns:
            Optional subset of basis-function indices to evaluate; defaults
            to all ``M`` functions.
        dtype:
            Result dtype: ``None``/float64 (the canonical bits) or float32
            (the opt-in reduced-precision serving mode; see
            ``docs/backends.md``).  Cache entries are keyed per dtype (and
            per non-canonical backend), so mixed-precision callers never
            cross-serve each other's matrices.

        Returns
        -------
        numpy.ndarray
            ``G`` of shape ``(K, len(columns))`` with
            ``G[k, j] = g_{columns[j]}(x[k])``.
        """
        out_dtype = resolve_dtype(dtype)
        x = self._coerce_samples(x)
        wanted = self._resolve_columns(columns)

        cache = design_cache()
        if cache is None or x.shape[0] * max(len(wanted), 1) < cache.min_result_cells:
            result = self._assemble(x, wanted, out_dtype)
        else:
            signature = None if columns is None else tuple(wanted)
            key = design_key(
                self.cache_token(),
                x,
                signature,
                dtype=out_dtype,
                backend=get_backend().name,
            )
            result = cache.get_or_compute(
                key, lambda: self._assemble(x, wanted, out_dtype), dtype=out_dtype
            )
        return check_array(
            result,
            name="design matrix G",
            dtype=out_dtype,
            ndim=2,
            c_contiguous=True,
        )

    def _coerce_samples(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis, :]
        if x.ndim != 2 or x.shape[1] != self.num_vars:
            raise ValueError(
                f"expected samples of shape (K, {self.num_vars}), got {x.shape}"
            )
        return x

    def _resolve_columns(self, columns: Optional[Sequence[int]]) -> List[int]:
        """Materialize ``columns`` once, normalizing negative indices.

        A generator argument must be consumed exactly once: both table
        sizing and assembly below iterate the result, so everything works
        off this single materialized list.
        """
        if columns is None:
            return list(range(self.size))
        wanted: List[int] = []
        for c in columns:
            c = int(c)
            if c < 0:
                c += self.size
            if not 0 <= c < self.size:
                raise IndexError(
                    f"column {c} out of range for basis of size {self.size}"
                )
            wanted.append(c)
        return wanted

    def _assemble(
        self, x: np.ndarray, wanted: List[int], dtype: np.dtype
    ) -> np.ndarray:
        with metrics.timer("design_matrix"):
            metrics.increment("design_matrix.calls")
            metrics.increment("design_matrix.cells", x.shape[0] * len(wanted))
            if self.is_linear():
                return self._linear_design_matrix(x, wanted, dtype)
            plan = self._gather_plan(x, wanted, dtype)
            if plan is None:
                return np.ones((x.shape[0], len(wanted)), dtype=dtype)
            stacked, gather = plan
            return get_backend().gather_product(stacked, gather)

    def _gather_plan(
        self, x: np.ndarray, wanted: List[int], dtype: np.dtype
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Build the ``(stacked table, gather indices)`` assembly plan.

        The univariate orthonormal Hermite tables are evaluated in one
        batched recurrence over every active variable, only up to the
        highest degree the *selected* columns actually use, and stacked
        next to a shared ones column with a ``(degree, variable)``-major
        column layout, samples along the leading axis.  Each output column
        is then a product of ``depth`` columns of that table (zero-padded
        gather rows multiply by the ones column for lower-order terms) --
        the exact shape every :class:`repro.backends.Backend` implements
        as ``gather_product`` (blocked take/multiply on numpy, a parallel
        JIT loop on numba, tensor gathers on torch) and as the fused
        ``fused_gather_matvec`` serving kernel.

        The recurrence always runs in float64; a float32 plan downcasts
        the stacked table once, so every backend consumes identical bits.
        Returns ``None`` when the selection needs no table at all (empty
        selection or constant-only columns -- the result is all ones).
        """
        num_samples = x.shape[0]
        num_cols = len(wanted)
        if num_cols == 0:
            return None

        max_deg: dict = {}
        depth = 1
        for m in wanted:
            idx = self.indices[m]
            depth = max(depth, len(idx))
            for var, deg in idx:
                if deg > max_deg.get(var, 0):
                    max_deg[var] = deg

        active = sorted(max_deg)
        table_degree = max(max_deg.values(), default=0)
        if table_degree == 0:
            return None
        # Batched recurrence over all active variables at once:
        # (table_degree + 1, K, V) -> columns laid out (degree, variable)-
        # major with samples as the leading axis.
        batch = hermite_orthonormal_all(table_degree, x[:, active])
        num_active = len(active)
        stacked = np.empty(
            (num_samples, 1 + table_degree * num_active), dtype=dtype
        )
        stacked[:, 0] = 1.0
        stacked[:, 1:] = batch[1:].transpose(1, 0, 2).reshape(num_samples, -1)
        position = {var: p for p, var in enumerate(active)}

        gather = np.zeros((num_cols, depth), dtype=np.intp)
        for j, m in enumerate(wanted):
            for level, (var, deg) in enumerate(self.indices[m]):
                gather[j, level] = 1 + (deg - 1) * num_active + position[var]
        return stacked, gather

    def _design_matrix_loop(
        self, x: np.ndarray, columns: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Reference per-column assembly (the pre-vectorization algorithm).

        Kept for equivalence tests and as the baseline of the
        design-matrix benchmark; not used on any production path.
        """
        x = self._coerce_samples(x)
        wanted = self._resolve_columns(columns)
        num_samples = x.shape[0]
        if self.is_linear():
            return self._linear_design_matrix(x, wanted, np.dtype(np.float64))
        active_vars = sorted({v for m in wanted for v, _ in self.indices[m]})
        per_var = {
            v: hermite_orthonormal_all(self._max_degree, x[:, v]) for v in active_vars
        }
        out = np.empty((num_samples, len(wanted)), dtype=float)
        for j, m in enumerate(wanted):
            col = np.ones(num_samples, dtype=float)
            for var, deg in self.indices[m]:
                col = col * per_var[var][deg]
            out[:, j] = col
        return out

    def _linear_design_matrix(
        self, x: np.ndarray, wanted: List[int], dtype: np.dtype
    ) -> np.ndarray:
        """Fast path for linear bases: columns are 1 or a raw variable."""
        out = np.empty((x.shape[0], len(wanted)), dtype=dtype)
        const_pos: List[int] = []
        var_pos: List[int] = []
        var_ids: List[int] = []
        for j, m in enumerate(wanted):
            idx = self.indices[m]
            if not idx:
                const_pos.append(j)
            else:
                var_pos.append(j)
                var_ids.append(idx[0][0])
        if const_pos:
            out[:, const_pos] = 1.0
        if var_pos:
            out[:, var_pos] = x[:, var_ids]
        return out

    def fused_predict(
        self,
        x: np.ndarray,
        coefficients: np.ndarray,
        dtype: Optional[object] = None,
    ) -> np.ndarray:
        """Fused design-matrix -> prediction serving kernel.

        Computes ``design_matrix(x) @ coefficients`` in one backend
        dispatch.  On a design-cache hit the cached matrix feeds a single
        ``matvec`` (no re-assembly); on a cache miss for a cacheable size
        the matrix is materialized once, cached for the next batch of the
        same samples, and consumed by the same ``matvec``.  Below the
        cache's ``min_result_cells`` threshold -- the common serving
        micro-batch -- the backend's ``fused_gather_matvec`` streams
        block-sized slices of the assembly straight into the dot product,
        so no ``K x M`` intermediate is ever materialized.

        ``dtype`` selects the serving precision (``None``/float64 or the
        opt-in float32 mode bounded by
        :data:`repro.backends.FLOAT32_SERVING_RTOL`); the result has that
        dtype.  Counted as ``backends.fused_predicts``.
        """
        out_dtype = resolve_dtype(dtype)
        x = self._coerce_samples(x)
        coefficients = np.ascontiguousarray(coefficients, dtype=out_dtype)
        if coefficients.shape != (self.size,):
            raise ValueError(
                f"expected {self.size} coefficients, got shape {coefficients.shape}"
            )
        metrics.increment("backends.fused_predicts")
        backend = get_backend()
        cache = design_cache()
        wanted = list(range(self.size))
        if (
            cache is not None
            and x.shape[0] * max(self.size, 1) >= cache.min_result_cells
        ):
            key = design_key(
                self.cache_token(), x, None, dtype=out_dtype, backend=backend.name
            )
            design = cache.get_or_compute(
                key, lambda: self._assemble(x, wanted, out_dtype), dtype=out_dtype
            )
            return backend.matvec(design, coefficients)
        if self.is_linear():
            design = self._linear_design_matrix(x, wanted, out_dtype)
            return backend.matvec(design, coefficients)
        plan = self._gather_plan(x, wanted, out_dtype)
        if plan is None:
            design = np.ones((x.shape[0], self.size), dtype=out_dtype)
            return backend.matvec(design, coefficients)
        stacked, gather = plan
        return backend.fused_gather_matvec(stacked, gather, coefficients)

    def evaluate(self, coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate ``sum_m alpha_m g_m(x)`` for each row of ``x`` (eq. 2)."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self.size,):
            raise ValueError(
                f"expected {self.size} coefficients, got shape {coefficients.shape}"
            )
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        design = self.design_matrix(x)
        values = design @ coefficients
        return values[0] if squeeze else values

    # ------------------------------------------------------------------
    # Structure helpers used by prior mapping (Section IV-A)
    # ------------------------------------------------------------------
    def index_of(self, index: MultiIndex) -> int:
        """Position of a multi-index in the basis (raises if absent)."""
        try:
            return self.indices.index(index)
        except ValueError:
            raise KeyError(f"multi-index {index} not in basis") from None

    def restricted_to(self, columns: Sequence[int]) -> "OrthonormalBasis":
        """New basis containing only the selected basis functions."""
        return OrthonormalBasis(self.num_vars, [self.indices[c] for c in columns])
