"""Multivariate orthonormal polynomial basis (eqs. 2-5 of the paper).

:class:`OrthonormalBasis` bundles a multi-index set over ``num_vars``
standard-normal variables and evaluates the design matrix **G** of eq. (9):

    G[k, m] = g_m(x^(k))

Each basis function is a product of univariate orthonormal Hermite
polynomials; orthonormality of the product set follows from independence of
the variables.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .hermite import hermite_orthonormal_all
from .multiindex import (
    MultiIndex,
    linear_index_set,
    total_degree_index_set,
    validate_index_set,
)

__all__ = ["OrthonormalBasis"]


class OrthonormalBasis:
    """A set of multivariate orthonormal polynomial basis functions.

    Parameters
    ----------
    num_vars:
        Number of underlying standard-normal variables ``R``.
    indices:
        Sparse multi-index set defining the basis functions.  Each entry is
        a tuple of ``(variable, degree)`` pairs; the empty tuple is the
        constant function.  Use the classmethod constructors for common sets.

    Notes
    -----
    The basis is orthonormal under ``x ~ N(0, I)``:

        E[g_i(x) g_j(x)] = delta_ij

    which the test suite verifies by Monte Carlo quadrature.
    """

    def __init__(self, num_vars: int, indices: Sequence[MultiIndex]):
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        validate_index_set(indices, num_vars)
        self.num_vars = int(num_vars)
        self.indices: List[MultiIndex] = list(indices)
        self._max_degree = max(
            (deg for idx in self.indices for _, deg in idx), default=0
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, num_vars: int, include_constant: bool = True) -> "OrthonormalBasis":
        """Linear basis ``{1, x_1, ..., x_R}`` used by the paper's examples."""
        return cls(num_vars, linear_index_set(num_vars, include_constant))

    @classmethod
    def total_degree(cls, num_vars: int, degree: int) -> "OrthonormalBasis":
        """All products with total degree at most ``degree`` (eq. 5 order)."""
        return cls(num_vars, total_degree_index_set(num_vars, degree))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of basis functions ``M``."""
        return len(self.indices)

    @property
    def max_degree(self) -> int:
        """Highest univariate degree appearing in any basis function."""
        return self._max_degree

    def is_linear(self) -> bool:
        """True if every basis function has total degree <= 1."""
        return self._max_degree <= 1 and all(len(idx) <= 1 for idx in self.indices)

    def total_degrees(self) -> np.ndarray:
        """Total degree of each basis function, shape ``(M,)``."""
        return np.array([sum(d for _, d in idx) for idx in self.indices], dtype=int)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrthonormalBasis(num_vars={self.num_vars}, size={self.size}, "
            f"max_degree={self._max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrthonormalBasis):
            return NotImplemented
        return self.num_vars == other.num_vars and self.indices == other.indices

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def design_matrix(self, x: np.ndarray, columns: Optional[Sequence[int]] = None) -> np.ndarray:
        """Assemble the design matrix **G** of eq. (9).

        Parameters
        ----------
        x:
            Sample matrix of shape ``(K, num_vars)`` (a single sample of
            shape ``(num_vars,)`` is promoted to ``(1, num_vars)``).
        columns:
            Optional subset of basis-function indices to evaluate; defaults
            to all ``M`` functions.

        Returns
        -------
        numpy.ndarray
            ``G`` of shape ``(K, len(columns))`` with
            ``G[k, j] = g_{columns[j]}(x[k])``.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis, :]
        if x.ndim != 2 or x.shape[1] != self.num_vars:
            raise ValueError(
                f"expected samples of shape (K, {self.num_vars}), got {x.shape}"
            )
        wanted = range(self.size) if columns is None else columns
        num_samples = x.shape[0]

        if self.is_linear():
            return self._linear_design_matrix(x, wanted)

        # General case: precompute univariate polynomial values per degree,
        # but only for variables that actually appear with degree >= 1.
        active_vars = sorted({v for m in wanted for v, _ in self.indices[m]})
        per_var = {
            v: hermite_orthonormal_all(self._max_degree, x[:, v]) for v in active_vars
        }
        out = np.empty((num_samples, len(list(wanted))), dtype=float)
        # ``wanted`` may be a range; re-materialize for double iteration.
        wanted = list(wanted)
        for j, m in enumerate(wanted):
            col = np.ones(num_samples, dtype=float)
            for var, deg in self.indices[m]:
                col = col * per_var[var][deg]
            out[:, j] = col
        return out

    def _linear_design_matrix(self, x: np.ndarray, wanted) -> np.ndarray:
        """Fast path for linear bases: columns are 1 or a raw variable."""
        wanted = list(wanted)
        out = np.empty((x.shape[0], len(wanted)), dtype=float)
        for j, m in enumerate(wanted):
            idx = self.indices[m]
            if not idx:
                out[:, j] = 1.0
            else:
                var, _deg = idx[0]
                out[:, j] = x[:, var]
        return out

    def evaluate(self, coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate ``sum_m alpha_m g_m(x)`` for each row of ``x`` (eq. 2)."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self.size,):
            raise ValueError(
                f"expected {self.size} coefficients, got shape {coefficients.shape}"
            )
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        design = self.design_matrix(x)
        values = design @ coefficients
        return values[0] if squeeze else values

    # ------------------------------------------------------------------
    # Structure helpers used by prior mapping (Section IV-A)
    # ------------------------------------------------------------------
    def index_of(self, index: MultiIndex) -> int:
        """Position of a multi-index in the basis (raises if absent)."""
        try:
            return self.indices.index(index)
        except ValueError:
            raise KeyError(f"multi-index {index} not in basis") from None

    def restricted_to(self, columns: Sequence[int]) -> "OrthonormalBasis":
        """New basis containing only the selected basis functions."""
        return OrthonormalBasis(self.num_vars, [self.indices[c] for c in columns])
