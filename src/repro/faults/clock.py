"""Injectable manual clock for deterministic time-driven tests.

Components whose behavior depends on elapsed time -- the
:class:`~repro.faults.CircuitBreaker` recovery timeout, the
:class:`~repro.serving.health.AIMDLimiter` decrease cooldown -- accept a
``clock`` callable so tests can drive time explicitly instead of
sleeping.  :class:`ManualClock` is the canonical implementation: a
thread-safe monotonic counter advanced only by :meth:`advance` /
:meth:`set`, so a test's time axis is a pure function of the test body.
"""

from __future__ import annotations

from ..locks import named_lock

__all__ = ["ManualClock"]


class ManualClock:
    """A callable clock that only moves when told to.

    Use anywhere a ``clock: Callable[[], float]`` parameter is accepted::

        clock = ManualClock()
        limiter = AIMDLimiter(0.01, cooldown_seconds=5.0, clock=clock)
        clock.advance(5.0)   # one cooldown elapses, no wall-time spent
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = named_lock("faults.clock")

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}; time is monotonic")
        with self._lock:
            self._now += float(seconds)
            return self._now

    def set(self, value: float) -> float:
        """Jump to an absolute reading (must not move backwards)."""
        with self._lock:
            if value < self._now:
                raise ValueError(
                    f"cannot set clock back to {value} from {self._now}"
                )
            self._now = float(value)
            return self._now

    def __repr__(self) -> str:
        return f"ManualClock({self()!r})"
