"""Deterministic fault-injection substrate: named failpoints + fault plans.

A *failpoint* is a named hook compiled into production code at the places
where real deployments fail: the Cholesky border update, the design-matrix
cache hit path, the registry publish, the engine's evaluation attempt.  In
normal operation a failpoint costs one module-global load and a ``None``
check -- there is no registry lookup, no lock, and no metrics traffic on
the disarmed path, so hooks can live on hot paths.

A *fault plan* (:class:`FaultPlan`) describes when an armed failpoint
should misbehave -- every Nth hit, with seeded probability ``p``, exactly
once, or by injecting latency -- and what to raise.  Plans are armed for a
scope with :func:`inject`::

    with inject(FaultPlan.fail_every("solver.cholesky", 3, error=SolverError("boom"))):
        run_chaos_stream(...)

Everything is deterministic: probabilistic plans draw from their own
seeded :class:`numpy.random.Generator`, and per-plan hit/trigger counters
advance in program order, so the same seed and the same driving produce
the same fault sequence (the chaos suite pins this down bitwise through
the metrics registry).

Injection activity is reported through ``faults.*`` counters in
:mod:`repro.runtime.metrics`: ``faults.hits`` (armed hits on planned
failpoints), ``faults.injected`` / ``faults.injected.<name>`` (errors
raised), and ``faults.delays`` (latency injections).
"""

from __future__ import annotations

import functools
import threading
from ..locks import named_lock
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Type, Union

import numpy as np


def _metrics():
    """Late import: keeps :mod:`repro.faults` a leaf package.

    :mod:`repro.runtime.cache` (pulled in by ``repro.runtime.__init__``)
    itself compiles in a failpoint, so a module-level metrics import here
    would be circular.  Only the armed dispatch path pays the lookup.
    """
    from ..runtime.metrics import metrics

    return metrics


__all__ = [
    "Failpoint",
    "FailpointRegistry",
    "FaultPlan",
    "FaultSession",
    "InjectedFault",
    "SimulatedCrash",
    "failpoint",
    "inject",
    "known_failpoints",
]


class InjectedFault(Exception):
    """Default error raised by a triggered fault plan."""


class SimulatedCrash(Exception):
    """Process death injected at a failpoint (crash-at-failpoint mode).

    Arm a plan with ``error=SimulatedCrash`` to model the process dying at
    that exact point.  Unlike :class:`InjectedFault`, library code never
    absorbs or retries this exception: handlers perform at most
    *crash-consistent* cleanup (e.g. :class:`repro.store.ModelStore`
    leaving a torn record on disk, exactly as a real power loss would) and
    re-raise, so the crash unwinds all the way to the harness -- which then
    discards every in-memory object, as a dead process implicitly does, and
    exercises recovery from durable state alone.
    """


ErrorSpec = Union[BaseException, Type[BaseException], Callable[[], BaseException]]


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of how one failpoint misbehaves while armed.

    Exactly one firing rule applies: ``every`` (fire on every Nth hit),
    ``probability`` (fire with seeded probability ``p`` per hit), or
    neither (fire on every hit).  ``max_triggers`` bounds total firings
    (``fail_once``).  A plan injects an error, latency, or both (latency
    is applied before the error is raised).

    Use the factory classmethods -- they read like the fault they model.
    """

    failpoint: str
    error: Optional[ErrorSpec] = None
    latency_seconds: float = 0.0
    every: Optional[int] = None
    probability: Optional[float] = None
    seed: Optional[int] = None
    max_triggers: Optional[int] = None
    #: Scope the plan to hits carrying this tag (``Failpoint.hit(tag=...)``);
    #: ``None`` matches every hit.  The sharded serving tier tags each
    #: engine's hits ``"shard-<id>"``, so a slow-shard chaos plan can
    #: degrade exactly one shard while its ring peers stay healthy.
    tag: Optional[str] = None

    def __post_init__(self):
        if not self.failpoint:
            raise ValueError("failpoint name must be non-empty")
        if self.error is None and self.latency_seconds <= 0:
            raise ValueError(
                "plan must inject an error, latency, or both; got neither"
            )
        if self.latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be >= 0, got {self.latency_seconds}"
            )
        if self.every is not None and self.probability is not None:
            raise ValueError("every and probability are mutually exclusive")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.probability is not None:
            if not 0.0 < self.probability <= 1.0:
                raise ValueError(
                    f"probability must be in (0, 1], got {self.probability}"
                )
            if self.seed is None:
                raise ValueError(
                    "probabilistic plans require an explicit seed -- fault "
                    "injection must be reproducible"
                )
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError(f"max_triggers must be >= 1, got {self.max_triggers}")

    # -- factories ------------------------------------------------------
    @classmethod
    def fail_every(
        cls,
        failpoint: str,
        nth: int,
        error: Optional[ErrorSpec] = None,
        max_triggers: Optional[int] = None,
    ) -> "FaultPlan":
        """Raise on every ``nth`` hit of ``failpoint`` (1 = every hit)."""
        return cls(
            failpoint=failpoint,
            error=error if error is not None else InjectedFault,
            every=int(nth),
            max_triggers=max_triggers,
        )

    @classmethod
    def fail_with_probability(
        cls,
        failpoint: str,
        probability: float,
        seed: int,
        error: Optional[ErrorSpec] = None,
        max_triggers: Optional[int] = None,
    ) -> "FaultPlan":
        """Raise with probability ``p`` per hit, drawn from a seeded RNG."""
        return cls(
            failpoint=failpoint,
            error=error if error is not None else InjectedFault,
            probability=float(probability),
            seed=int(seed),
            max_triggers=max_triggers,
        )

    @classmethod
    def fail_once(
        cls, failpoint: str, error: Optional[ErrorSpec] = None
    ) -> "FaultPlan":
        """Raise on the first hit only (a transient, self-clearing fault)."""
        return cls(
            failpoint=failpoint,
            error=error if error is not None else InjectedFault,
            every=1,
            max_triggers=1,
        )

    @classmethod
    def latency(
        cls,
        failpoint: str,
        seconds: float,
        every: Optional[int] = None,
        max_triggers: Optional[int] = None,
        tag: Optional[str] = None,
    ) -> "FaultPlan":
        """Sleep ``seconds`` at the failpoint (a hung-worker / slow-IO spike).

        ``tag`` scopes the delay to hits carrying that tag -- the
        slow-*shard* (not slow-cluster) chaos scenario arms
        ``latency("engine.evaluate", ..., tag="shard-1")`` so only shard
        1's evaluations stall.
        """
        return cls(
            failpoint=failpoint,
            latency_seconds=float(seconds),
            every=every,
            max_triggers=max_triggers,
            tag=tag,
        )

    # -- runtime helpers ------------------------------------------------
    def build_error(self) -> BaseException:
        """Materialize the exception this plan injects."""
        spec = self.error
        if isinstance(spec, BaseException):
            return spec
        if isinstance(spec, type) and issubclass(spec, BaseException):
            return spec(f"injected fault at failpoint {self.failpoint!r}")
        if callable(spec):
            return spec()
        raise TypeError(f"unsupported error spec {spec!r}")


class _ArmedPlan:
    """Mutable runtime state of one armed plan (hit/trigger counters, RNG)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = named_lock("faults.plan")
        self.hits = 0
        self.triggers = 0
        self._rng = (
            np.random.default_rng(plan.seed)
            if plan.probability is not None
            else None
        )

    def should_trigger(self) -> bool:
        plan = self.plan
        with self._lock:
            self.hits += 1
            if plan.max_triggers is not None and self.triggers >= plan.max_triggers:
                return False
            if plan.every is not None:
                fire = self.hits % plan.every == 0
            elif plan.probability is not None:
                fire = float(self._rng.random()) < plan.probability
            else:
                fire = True
            if fire:
                self.triggers += 1
            return fire

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "triggers": self.triggers}


class FaultSession:
    """One :func:`inject` activation: armed plans grouped by failpoint."""

    def __init__(self, plans: Tuple[FaultPlan, ...]):
        self._by_name: Dict[str, List[_ArmedPlan]] = {}
        self._armed: List[_ArmedPlan] = []
        for plan in plans:
            armed = _ArmedPlan(plan)
            self._armed.append(armed)
            self._by_name.setdefault(plan.failpoint, []).append(armed)

    def plans_for(self, name: str) -> Optional[List[_ArmedPlan]]:
        return self._by_name.get(name)

    def stats(self) -> Dict[str, List[Dict[str, int]]]:
        """Per-failpoint hit/trigger counters of every plan in the session."""
        out: Dict[str, List[Dict[str, int]]] = {}
        for name, armed_list in self._by_name.items():
            out[name] = [armed.stats() for armed in armed_list]
        return out


class FailpointRegistry:
    """Process-global catalog of failpoints and stack of armed sessions.

    Arming swaps an immutable tuple of sessions under a lock and flips the
    module-level ``_ACTIVE`` pointer; the disarmed hot path never touches
    the registry at all.
    """

    def __init__(self) -> None:
        self._lock = named_lock("faults.registry")
        self._points: Dict[str, "Failpoint"] = {}
        self._sessions: Tuple[FaultSession, ...] = ()

    # -- catalog --------------------------------------------------------
    def get_or_create(self, name: str) -> "Failpoint":
        if not name:
            raise ValueError("failpoint name must be non-empty")
        with self._lock:
            point = self._points.get(name)
            if point is None:
                point = Failpoint(name)
                self._points[name] = point
            return point

    def known(self) -> Tuple[str, ...]:
        """Sorted names of every failpoint created so far."""
        with self._lock:
            return tuple(sorted(self._points))

    # -- arming ---------------------------------------------------------
    def arm(self, plans: Tuple[FaultPlan, ...]) -> FaultSession:
        global _ACTIVE
        session = FaultSession(plans)
        with self._lock:
            self._sessions = self._sessions + (session,)
            _ACTIVE = self
        return session

    def disarm(self, session: FaultSession) -> None:
        global _ACTIVE
        with self._lock:
            self._sessions = tuple(s for s in self._sessions if s is not session)
            if not self._sessions:
                _ACTIVE = None

    @property
    def armed(self) -> bool:
        with self._lock:
            return bool(self._sessions)

    # -- hit dispatch (armed path only) ---------------------------------
    def dispatch(self, name: str, tag: Optional[str] = None) -> None:
        # Lock-free snapshot: _sessions is only ever rebound to a fresh
        # tuple under _lock, so one atomic read yields a consistent view;
        # taking the lock here would serialize every failpoint dispatch.
        sessions = self._sessions  # repro: noqa[REP010] -- deliberate lock-free tuple snapshot
        metrics = _metrics()
        for session in sessions:
            armed_list = session.plans_for(name)
            if not armed_list:
                continue
            metrics.increment("faults.hits")
            for armed in armed_list:
                # Tag-scoped plans only see matching hits: an untagged
                # hit never fires them and their hit/trigger counters
                # advance only on their own shard's traffic.
                if armed.plan.tag is not None and armed.plan.tag != tag:
                    continue
                if not armed.should_trigger():
                    continue
                plan = armed.plan
                if plan.latency_seconds > 0:
                    metrics.increment("faults.delays")
                    time.sleep(plan.latency_seconds)
                if plan.error is not None:
                    metrics.increment("faults.injected")
                    metrics.increment(f"faults.injected.{name}")
                    raise plan.build_error()


class Failpoint:
    """A named injection hook; cheap enough to call on hot paths.

    Usable three ways::

        _FP = failpoint("solver.cholesky")   # module-level, created once

        _FP.hit()                 # explicit evaluation at a point
        with _FP:                 # context form: evaluates on entry
            ...
        @_FP                      # decorator form: evaluates before the call
        def factor(...): ...

    When no plan is armed, :meth:`hit` is a global load plus a ``None``
    check -- unmeasurable on the served path (the vectorization benchmark
    enforces this).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def hit(self, tag: Optional[str] = None) -> None:
        """Evaluate the failpoint: no-op unless a plan is armed for it.

        ``tag`` identifies the hitting instance (e.g. ``"shard-2"``) so
        tag-scoped plans can target one instance of a shared code path;
        untagged plans match regardless.
        """
        active = _ACTIVE
        if active is not None:
            active.dispatch(self.name, tag)

    def __enter__(self) -> "Failpoint":
        self.hit()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            self.hit()
            return fn(*args, **kwargs)

        return wrapper

    def __repr__(self) -> str:
        return f"Failpoint({self.name!r})"


#: Process-global failpoint registry (catalog + armed-session stack).
registry = FailpointRegistry()

#: Fast-path pointer: ``None`` whenever no session is armed.  Failpoint
#: hits read this single module global; arming/disarming swaps it under
#: the registry lock.
_ACTIVE: Optional[FailpointRegistry] = None


def failpoint(name: str) -> Failpoint:
    """The (cached) :class:`Failpoint` registered under ``name``.

    Consumers call this once at import time and keep the returned object
    in a module-level name, then call ``.hit()`` (or use ``with`` /
    decorator form) at the injection site.
    """
    return registry.get_or_create(name)


def known_failpoints() -> Tuple[str, ...]:
    """Sorted catalog of every failpoint name created in this process."""
    return registry.known()


@contextmanager
def inject(*plans: FaultPlan) -> Iterator[FaultSession]:
    """Arm ``plans`` for the duration of the ``with`` block.

    Yields the :class:`FaultSession`, whose :meth:`~FaultSession.stats`
    expose per-plan hit/trigger counters.  Nested activations compose:
    every armed session sees every hit.
    """
    if not plans:
        raise ValueError("inject() requires at least one FaultPlan")
    for plan in plans:
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"expected FaultPlan, got {type(plan).__name__}")
    session = registry.arm(tuple(plans))
    try:
        yield session
    finally:
        registry.disarm(session)
