"""Bounded retry with decorrelated-jitter backoff, and deadline propagation.

This module is one of the two sanctioned homes of ``time.sleep`` in the
library (the other is the latency-injection path of
:mod:`repro.faults.failpoints`); the REP008 lint rule flags sleeps
anywhere else under ``src/``.

The backoff schedule is *decorrelated jitter* (the AWS architecture-blog
variant): each delay is drawn uniformly from ``[base, 3 * previous]`` and
clamped to ``[base, cap]``.  Jitter spreads synchronized retry storms
apart; drawing from a caller-seeded :class:`numpy.random.Generator` keeps
the schedule bitwise reproducible, which the property suite pins down.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type

import numpy as np

__all__ = ["Deadline", "DeadlineExpiredError", "RetryPolicy"]


class DeadlineExpiredError(TimeoutError):
    """A request's deadline passed before it could be (fully) served."""


class Deadline:
    """A point in time requests carry with them through the stack.

    Built from a relative timeout once, at the edge (request submission),
    then *propagated* -- dispatcher, retry loop, and workers all compare
    against the same absolute instant instead of restarting their own
    timers, so queue time counts against the budget.
    """

    __slots__ = ("at", "_clock")

    def __init__(self, at: float, clock: Callable[[], float] = time.monotonic):
        self.at = float(at)
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Deadline ``seconds`` from now (negative clamps to 'already past')."""
        return cls(clock() + float(seconds), clock)

    @property
    def expired(self) -> bool:
        return self._clock() >= self.at

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.at - self._clock())

    def __repr__(self) -> str:
        return f"Deadline(at={self.at:.6f}, remaining={self.remaining():.6f})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with decorrelated-jitter exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (1 = no retries).
    base_seconds / cap_seconds:
        Backoff delay bounds; every delay lies in ``[base, cap]``.
    seed:
        Seed of the jitter RNG created by :meth:`make_rng`.  Policies are
        frozen/stateless; callers own the Generator so concurrent retry
        loops can coordinate (or isolate) draws explicitly.
    non_retryable:
        Exception types that fail immediately -- caller bugs (bad shapes,
        unknown names) never deserve a retry.
    """

    max_attempts: int = 3
    base_seconds: float = 0.005
    cap_seconds: float = 0.25
    seed: int = 0
    non_retryable: Tuple[Type[BaseException], ...] = field(
        default=(TypeError, ValueError, KeyError)
    )

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_seconds <= 0:
            raise ValueError(f"base_seconds must be > 0, got {self.base_seconds}")
        if self.cap_seconds < self.base_seconds:
            raise ValueError(
                f"cap_seconds ({self.cap_seconds}) must be >= base_seconds "
                f"({self.base_seconds})"
            )

    def make_rng(self) -> np.random.Generator:
        """A fresh jitter Generator seeded from the policy."""
        return np.random.default_rng(self.seed)

    def is_retryable(self, error: BaseException) -> bool:
        """Whether a failed attempt with this error should be retried."""
        return not isinstance(error, self.non_retryable)

    def delays(
        self,
        rng: np.random.Generator,
        lock: Optional[threading.Lock] = None,
    ) -> Iterator[float]:
        """The (up to ``max_attempts - 1``) backoff delays of one retry run.

        Decorrelated jitter: ``delay_i = min(cap, U[base, 3 * delay_{i-1}])``
        with ``delay_0 = base``.  Delays are drawn lazily -- a run that
        succeeds on attempt ``k`` consumes exactly ``k - 1`` draws, keeping
        seeded fault schedules aligned with observed failures.  Pass
        ``lock`` when the Generator is shared across threads.
        """
        previous = self.base_seconds
        for _ in range(self.max_attempts - 1):
            if lock is not None:
                with lock:
                    drawn = float(rng.uniform(self.base_seconds, 3.0 * previous))
            else:
                drawn = float(rng.uniform(self.base_seconds, 3.0 * previous))
            previous = min(self.cap_seconds, drawn)
            yield previous

    def call(
        self,
        fn: Callable[[], object],
        rng: Optional[np.random.Generator] = None,
        rng_lock: Optional[threading.Lock] = None,
        sleep: Callable[[float], None] = time.sleep,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[BaseException, float], None]] = None,
    ) -> object:
        """Run ``fn`` under this policy; return its value or raise the last error.

        Stops early -- raising the last error -- when the error is
        non-retryable or when backing off would overrun ``deadline``.
        ``on_retry(error, delay)`` is invoked before each backoff sleep
        (metrics hooks).  Pass ``rng_lock`` when ``rng`` is shared across
        threads (e.g. one engine-wide jitter Generator).
        """
        if rng is None:
            rng = self.make_rng()
        backoffs = self.delays(rng, rng_lock)
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except BaseException as error:  # classified below, then re-raised
                if attempt >= self.max_attempts or not self.is_retryable(error):
                    raise
                delay = next(backoffs)
                if deadline is not None and deadline.remaining() < delay:
                    raise
                if on_retry is not None:
                    on_retry(error, delay)
                sleep(delay)
