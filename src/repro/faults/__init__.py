"""Deterministic fault injection and self-healing primitives.

Three pieces (see ``docs/faults.md``):

* :mod:`~repro.faults.failpoints` -- named failpoints compiled into
  production code, armed with seeded :class:`FaultPlan` s inside an
  :func:`inject` scope; zero overhead when disarmed.
* :mod:`~repro.faults.retry` -- bounded :class:`RetryPolicy` with
  decorrelated-jitter backoff and :class:`Deadline` propagation.
* :mod:`~repro.faults.breaker` -- per-key :class:`CircuitBreaker`
  (closed -> open -> half-open) with an injectable clock.

The serving stack (:mod:`repro.serving`) composes all three; the chaos
suite (``tests/test_faults_chaos.py``) drives them end to end.
"""

from .breaker import CircuitBreaker, CircuitOpenError
from .clock import ManualClock
from .failpoints import (
    Failpoint,
    FailpointRegistry,
    FaultPlan,
    FaultSession,
    InjectedFault,
    SimulatedCrash,
    failpoint,
    inject,
    known_failpoints,
)
from .retry import Deadline, DeadlineExpiredError, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExpiredError",
    "Failpoint",
    "FailpointRegistry",
    "FaultPlan",
    "FaultSession",
    "InjectedFault",
    "ManualClock",
    "RetryPolicy",
    "SimulatedCrash",
    "failpoint",
    "inject",
    "known_failpoints",
]
