"""Per-key circuit breaker: closed -> open -> half-open -> closed.

One breaker instance tracks many keys (the serving engine keys by model
digest), each with the classic three-state machine:

* **closed** -- requests flow; consecutive failures are counted, and the
  ``failure_threshold``-th one opens the circuit.
* **open** -- requests are rejected without being attempted until
  ``reset_timeout_seconds`` has elapsed, then the breaker half-opens.
* **half-open** -- exactly **one** probe request is allowed through; its
  success closes the circuit, its failure re-opens it (and restarts the
  reset timer).

The clock is injectable, so schedules are testable without sleeping, and
every transition is both counted in :mod:`repro.runtime.metrics`
(``serving.breaker.opened`` / ``half_opened`` / ``closed`` /
``rejected``) and visible in :meth:`CircuitBreaker.snapshot`.
"""

from __future__ import annotations

import threading
from ..locks import named_lock
import time
from typing import Callable, Dict, Optional


def _metrics():
    """Late import of the runtime metrics registry (avoids an import cycle:
    ``repro.runtime.cache`` compiles in a failpoint from this package)."""
    from ..runtime.metrics import metrics

    return metrics


__all__ = ["CircuitBreaker", "CircuitOpenError"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """A request was rejected because its circuit is open."""


class _KeyState:
    __slots__ = ("state", "consecutive_failures", "opened_at", "probe_in_flight")

    def __init__(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False


class CircuitBreaker:
    """Thread-safe, many-key circuit breaker with an injectable clock.

    Parameters
    ----------
    failure_threshold:
        Consecutive (post-retry) failures that open a closed circuit.
    reset_timeout_seconds:
        How long an open circuit rejects before half-opening.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_seconds: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_seconds <= 0:
            raise ValueError(
                f"reset_timeout_seconds must be > 0, got {reset_timeout_seconds}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_seconds = float(reset_timeout_seconds)
        self._clock = clock
        self._lock = named_lock("faults.breaker")
        self._keys: Dict[str, _KeyState] = {}

    # ------------------------------------------------------------------
    def allow(self, key: str) -> bool:
        """Whether a request for ``key`` may be attempted right now.

        In half-open state exactly one caller receives ``True`` until that
        probe's outcome is recorded; everyone else is rejected.
        """
        with self._lock:
            entry = self._keys.get(key)
            if entry is None or entry.state == CLOSED:
                return True
            if entry.state == OPEN:
                if self._clock() - entry.opened_at >= self.reset_timeout_seconds:
                    entry.state = HALF_OPEN
                    entry.probe_in_flight = True
                    _metrics().increment("serving.breaker.half_opened")
                    return True
                _metrics().increment("serving.breaker.rejected")
                return False
            # half-open: admit only the single outstanding probe.
            if entry.probe_in_flight:
                _metrics().increment("serving.breaker.rejected")
                return False
            entry.probe_in_flight = True
            return True

    def record_success(self, key: str) -> None:
        """An attempt for ``key`` succeeded; close the circuit."""
        with self._lock:
            entry = self._keys.get(key)
            if entry is None:
                return
            if entry.state != CLOSED:
                _metrics().increment("serving.breaker.closed")
            entry.state = CLOSED
            entry.consecutive_failures = 0
            entry.probe_in_flight = False

    def record_failure(self, key: str) -> None:
        """An attempt for ``key`` failed (after retries); maybe open."""
        with self._lock:
            entry = self._keys.get(key)
            if entry is None:
                entry = self._keys[key] = _KeyState()
            if entry.state == HALF_OPEN:
                entry.state = OPEN
                entry.opened_at = self._clock()
                entry.probe_in_flight = False
                _metrics().increment("serving.breaker.opened")
                return
            entry.consecutive_failures += 1
            if (
                entry.state == CLOSED
                and entry.consecutive_failures >= self.failure_threshold
            ):
                entry.state = OPEN
                entry.opened_at = self._clock()
                _metrics().increment("serving.breaker.opened")

    # ------------------------------------------------------------------
    def state(self, key: str) -> str:
        """Current state name for ``key`` (unknown keys are closed)."""
        with self._lock:
            entry = self._keys.get(key)
            if entry is None:
                return CLOSED
            if (
                entry.state == OPEN
                and self._clock() - entry.opened_at >= self.reset_timeout_seconds
            ):
                return HALF_OPEN  # would half-open on the next allow()
            return entry.state

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Locked per-key view: state, failure count, seconds in open."""
        now = self._clock()
        with self._lock:
            return {
                key: {
                    "state": entry.state,
                    "consecutive_failures": entry.consecutive_failures,
                    "open_for_seconds": (
                        now - entry.opened_at if entry.state == OPEN else 0.0
                    ),
                    "probe_in_flight": entry.probe_in_flight,
                }
                for key, entry in self._keys.items()
            }

    def reset(self, key: Optional[str] = None) -> None:
        """Forget one key's state (or every key's)."""
        with self._lock:
            if key is None:
                self._keys.clear()
            else:
                self._keys.pop(key, None)
