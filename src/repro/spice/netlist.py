"""Circuit netlist container for the SPICE-lite MNA engine.

The engine exists because the paper's substrate is a transistor-level
circuit simulator: the differential-pair prior-mapping example (Section
IV-A) and small parasitic-network studies are simulated with real modified
nodal analysis rather than closed-form behavioral models.  The netlist is a
plain container: node names (ground is ``"0"`` or ``"gnd"``), a list of
elements, and the index maps MNA needs.
"""

from __future__ import annotations

from typing import Dict, List

from .elements import Element, VoltageSource

__all__ = ["Circuit", "GROUND_NAMES"]

GROUND_NAMES = ("0", "gnd", "GND")


class Circuit:
    """A flat netlist of elements connecting named nodes.

    Example
    -------
    >>> from repro.spice import Circuit, Resistor, VoltageSource
    >>> ckt = Circuit("divider")
    >>> ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    >>> ckt.add(Resistor("R1", "in", "out", 1e3))
    >>> ckt.add(Resistor("R2", "out", "0", 1e3))
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.elements: List[Element] = []
        self._element_names: Dict[str, Element] = {}

    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add an element; names must be unique within the circuit."""
        if element.name in self._element_names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._element_names[element.name] = element
        self.elements.append(element)
        return element

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        try:
            return self._element_names[name]
        except KeyError:
            raise KeyError(f"no element named {name!r} in {self.name}") from None

    # ------------------------------------------------------------------
    def node_names(self) -> List[str]:
        """All non-ground nodes in first-appearance order."""
        seen: Dict[str, None] = {}
        for element in self.elements:
            for node in element.nodes():
                if node not in GROUND_NAMES and node not in seen:
                    seen[node] = None
        return list(seen)

    def node_index(self) -> Dict[str, int]:
        """Node name -> MNA unknown index (ground maps to -1)."""
        index = {name: i for i, name in enumerate(self.node_names())}
        for ground in GROUND_NAMES:
            index[ground] = -1
        return index

    def voltage_sources(self) -> List[VoltageSource]:
        """Voltage sources in order (each adds one branch-current unknown)."""
        return [e for e in self.elements if isinstance(e, VoltageSource)]

    def num_unknowns(self) -> int:
        """Size of the MNA system: node voltages + source branch currents."""
        return len(self.node_names()) + len(self.voltage_sources())

    def validate(self) -> None:
        """Basic sanity checks before simulation."""
        if not self.elements:
            raise ValueError(f"circuit {self.name!r} has no elements")
        nodes = self.node_names()
        if not nodes:
            raise ValueError(f"circuit {self.name!r} has no non-ground nodes")
        grounded = any(
            node in GROUND_NAMES
            for element in self.elements
            for node in element.nodes()
        )
        if not grounded:
            raise ValueError(
                f"circuit {self.name!r} has no ground connection; add a "
                "path to node '0'"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, elements={len(self.elements)}, "
            f"nodes={len(self.node_names())})"
        )
