"""Small-signal AC analysis.

Linearizes the circuit at its DC operating point (MOSFETs become gm/gds
stamps), then solves the complex MNA system at each requested frequency
with the designated input source set to unit magnitude and every other
independent source zeroed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .dc import dc_operating_point
from .elements import Capacitor, CurrentSource, Mosfet, Resistor, Vccs, VoltageSource
from .mna import MnaSystem
from .netlist import Circuit

__all__ = ["AcResult", "ac_analysis"]


@dataclass
class AcResult:
    """Frequency response of every node to the unit AC input.

    Attributes
    ----------
    frequencies:
        Analysis frequencies in Hz, shape ``(F,)``.
    transfer:
        Node name -> complex response of shape ``(F,)``.
    """

    frequencies: np.ndarray
    transfer: Dict[str, np.ndarray]

    def gain(self, node: str) -> np.ndarray:
        """Magnitude response at a node."""
        return np.abs(self._node(node))

    def gain_db(self, node: str) -> np.ndarray:
        """Magnitude response in dB."""
        return 20.0 * np.log10(np.maximum(self.gain(node), 1e-300))

    def phase(self, node: str) -> np.ndarray:
        """Phase response in radians."""
        return np.angle(self._node(node))

    def _node(self, node: str) -> np.ndarray:
        try:
            return self.transfer[node]
        except KeyError:
            raise KeyError(f"no node named {node!r}") from None


def ac_analysis(
    circuit: Circuit,
    frequencies: Sequence[float],
    input_source: str,
) -> AcResult:
    """Small-signal frequency sweep.

    Parameters
    ----------
    circuit:
        The netlist; must contain a source named ``input_source``.
    frequencies:
        Positive analysis frequencies in Hz.
    input_source:
        Name of the independent (voltage or current) source driven with
        unit AC magnitude; all other independent sources are small-signal
        grounded/opened.
    """
    frequencies = np.asarray(list(frequencies), dtype=float)
    if np.any(frequencies <= 0):
        raise ValueError("all frequencies must be positive")
    driver = circuit.element(input_source)
    if not isinstance(driver, (VoltageSource, CurrentSource)):
        raise TypeError(
            f"{input_source!r} is a {type(driver).__name__}, not an "
            "independent source"
        )

    op = dc_operating_point(circuit)
    system = MnaSystem(circuit, dtype=complex)
    node_names = circuit.node_names()
    transfer = {name: np.empty(len(frequencies), dtype=complex) for name in node_names}

    # Precompute MOSFET small-signal parameters at the operating point.
    mosfet_params = []
    for element in circuit.elements:
        if isinstance(element, Mosfet):
            sign = 1.0 if element.polarity == "nmos" else -1.0
            vgs = sign * (op.voltage(element.gate) - op.voltage(element.source))
            vds = sign * (op.voltage(element.drain) - op.voltage(element.source))
            _ids, gm, gds = element.ids(vgs, vds)
            mosfet_params.append((element, gm, gds))

    for i, frequency in enumerate(frequencies):
        omega = 2.0 * np.pi * frequency
        system.clear()
        branch = 0
        for element in circuit.elements:
            if isinstance(element, Resistor):
                element.stamp(system)
            elif isinstance(element, Capacitor):
                element.stamp_ac(system, omega)
            elif isinstance(element, Vccs):
                element.stamp(system)
            elif isinstance(element, VoltageSource):
                magnitude = 1.0 if element.name == input_source else 0.0
                system.add_voltage_source(
                    element.node_pos, element.node_neg, branch, magnitude
                )
                branch += 1
            elif isinstance(element, CurrentSource):
                if element.name == input_source:
                    system.add_current(element.node_a, -1.0)
                    system.add_current(element.node_b, 1.0)
            elif isinstance(element, Mosfet):
                pass  # stamped from precomputed small-signal parameters
            else:
                raise TypeError(
                    f"unsupported element type {type(element).__name__}"
                )
        for element, gm, gds in mosfet_params:
            system.add_transconductance(
                element.drain, element.source, element.gate, element.source, gm
            )
            system.add_conductance(element.drain, element.source, gds)
        solution = system.solve()
        for name in node_names:
            transfer[name][i] = solution[system.node_index[name]]

    return AcResult(frequencies, transfer)
