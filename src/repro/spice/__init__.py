"""SPICE-lite: a small modified-nodal-analysis circuit simulator.

Supports R, C, independent V/I sources (DC, pulse, PWL, sine), VCCS, and a
square-law MOSFET; analyses: DC operating point (Newton with gmin
stepping), fixed-step backward-Euler transient, and small-signal AC.
"""

from .ac import AcResult, ac_analysis
from .dc import ConvergenceError, OperatingPoint, dc_operating_point
from .elements import (
    Capacitor,
    CurrentSource,
    DcValue,
    Mosfet,
    PiecewiseLinear,
    Pulse,
    Resistor,
    Sine,
    Vccs,
    VoltageSource,
    Waveform,
)
from .mna import MnaSystem
from .netlist import Circuit
from .parser import NetlistSyntaxError, parse_netlist, parse_value
from .transient import TransientResult, transient

__all__ = [
    "AcResult",
    "Capacitor",
    "Circuit",
    "ConvergenceError",
    "CurrentSource",
    "DcValue",
    "MnaSystem",
    "NetlistSyntaxError",
    "parse_netlist",
    "parse_value",
    "Mosfet",
    "OperatingPoint",
    "PiecewiseLinear",
    "Pulse",
    "Resistor",
    "Sine",
    "TransientResult",
    "Vccs",
    "VoltageSource",
    "Waveform",
    "ac_analysis",
    "dc_operating_point",
    "transient",
]
