"""Circuit elements and their MNA stamps.

Each element knows how to stamp itself into an :class:`MnaSystem` (see
:mod:`repro.spice.mna`):

* static linear elements (R, I, VCCS) stamp once;
* voltage sources own a branch-current row;
* capacitors stamp a companion model during transient analysis;
* MOSFETs (square-law level-1 with channel-length modulation) stamp their
  Newton linearization each iteration.

Sources can be time-dependent (DC, pulse, piecewise-linear, sine) for
transient analysis.
"""

from __future__ import annotations

import abc
import bisect
import math
from typing import Optional, Sequence, Tuple

__all__ = [
    "Element",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "Vccs",
    "Mosfet",
    "Waveform",
    "DcValue",
    "Pulse",
    "PiecewiseLinear",
    "Sine",
]


# ----------------------------------------------------------------------
# Source waveforms
# ----------------------------------------------------------------------
class Waveform(abc.ABC):
    """Time-dependent source value."""

    @abc.abstractmethod
    def value(self, time: float) -> float:
        """Source value at ``time`` (DC analyses use ``time = 0``)."""


class DcValue(Waveform):
    """A constant value."""

    def __init__(self, value: float):
        self._value = float(value)

    def value(self, time: float) -> float:
        return self._value


class Pulse(Waveform):
    """SPICE-style periodic pulse waveform."""

    def __init__(
        self,
        low: float,
        high: float,
        delay: float = 0.0,
        rise: float = 1e-12,
        fall: float = 1e-12,
        width: float = 1e-9,
        period: Optional[float] = None,
    ):
        if rise <= 0 or fall <= 0:
            raise ValueError("rise and fall times must be positive")
        if width < 0:
            raise ValueError("pulse width must be non-negative")
        self.low = float(low)
        self.high = float(high)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = float(period) if period is not None else math.inf

    def value(self, time: float) -> float:
        if time < self.delay:
            return self.low
        local = time - self.delay
        if math.isfinite(self.period):
            local = local % self.period
        if local < self.rise:
            return self.low + (self.high - self.low) * local / self.rise
        local -= self.rise
        if local < self.width:
            return self.high
        local -= self.width
        if local < self.fall:
            return self.high + (self.low - self.high) * local / self.fall
        return self.low


class PiecewiseLinear(Waveform):
    """Piecewise-linear waveform through (time, value) points."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 1:
            raise ValueError("need at least one (time, value) point")
        times = [float(t) for t, _ in points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("times must be strictly increasing")
        self.times = times
        self.values = [float(v) for _, v in points]

    def value(self, time: float) -> float:
        if time <= self.times[0]:
            return self.values[0]
        if time >= self.times[-1]:
            return self.values[-1]
        hi = bisect.bisect_right(self.times, time)
        lo = hi - 1
        span = self.times[hi] - self.times[lo]
        frac = (time - self.times[lo]) / span
        return self.values[lo] + frac * (self.values[hi] - self.values[lo])


class Sine(Waveform):
    """Sinusoidal waveform ``offset + amplitude * sin(2 pi f (t - delay))``."""

    def __init__(
        self, offset: float, amplitude: float, frequency: float, delay: float = 0.0
    ):
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.delay = float(delay)

    def value(self, time: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * (time - self.delay)
        )


def _as_waveform(value) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DcValue(float(value))


# ----------------------------------------------------------------------
# Elements
# ----------------------------------------------------------------------
class Element(abc.ABC):
    """Base class for all netlist elements."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("element name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def nodes(self) -> Tuple[str, ...]:
        """Names of the nodes this element connects to."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes()})"


class Resistor(Element):
    """Linear resistor."""

    def __init__(self, name: str, node_a: str, node_b: str, resistance: float):
        super().__init__(name)
        if resistance <= 0:
            raise ValueError(f"resistance must be positive, got {resistance}")
        self.node_a = node_a
        self.node_b = node_b
        self.resistance = float(resistance)

    def nodes(self):
        return (self.node_a, self.node_b)

    def stamp(self, system) -> None:
        system.add_conductance(self.node_a, self.node_b, 1.0 / self.resistance)


class Capacitor(Element):
    """Linear capacitor (open in DC; companion model in transient)."""

    def __init__(self, name: str, node_a: str, node_b: str, capacitance: float):
        super().__init__(name)
        if capacitance <= 0:
            raise ValueError(f"capacitance must be positive, got {capacitance}")
        self.node_a = node_a
        self.node_b = node_b
        self.capacitance = float(capacitance)

    def nodes(self):
        return (self.node_a, self.node_b)

    def stamp_transient(self, system, prev_voltage: float, dt: float) -> None:
        """Backward-Euler companion: ``g = C/dt`` in parallel with ``g*v_prev``."""
        conductance = self.capacitance / dt
        system.add_conductance(self.node_a, self.node_b, conductance)
        # i_C = g*(v - v_prev): the -g*v_prev history term moves to the rhs
        # as a current injected into node_a (and drawn from node_b).
        system.add_current(self.node_a, conductance * prev_voltage)
        system.add_current(self.node_b, -conductance * prev_voltage)

    def stamp_ac(self, system, omega: float) -> None:
        """Complex admittance ``j omega C`` for small-signal AC analysis."""
        system.add_conductance(self.node_a, self.node_b, 1j * omega * self.capacitance)


class CurrentSource(Element):
    """Independent current source (flows from node_a to node_b internally)."""

    def __init__(self, name: str, node_a: str, node_b: str, dc=0.0, waveform=None):
        super().__init__(name)
        self.node_a = node_a
        self.node_b = node_b
        self.waveform = _as_waveform(waveform if waveform is not None else dc)

    def nodes(self):
        return (self.node_a, self.node_b)

    def stamp(self, system, time: float = 0.0) -> None:
        value = self.waveform.value(time)
        system.add_current(self.node_a, -value)
        system.add_current(self.node_b, value)


class VoltageSource(Element):
    """Independent voltage source; owns one branch-current unknown."""

    def __init__(self, name: str, node_pos: str, node_neg: str, dc=0.0, waveform=None):
        super().__init__(name)
        self.node_pos = node_pos
        self.node_neg = node_neg
        self.waveform = _as_waveform(waveform if waveform is not None else dc)

    def nodes(self):
        return (self.node_pos, self.node_neg)

    def stamp(self, system, branch: int, time: float = 0.0) -> None:
        system.add_voltage_source(
            self.node_pos, self.node_neg, branch, self.waveform.value(time)
        )


class Vccs(Element):
    """Voltage-controlled current source ``i(out) = gm * v(ctrl)``."""

    def __init__(
        self,
        name: str,
        out_pos: str,
        out_neg: str,
        ctrl_pos: str,
        ctrl_neg: str,
        gm: float,
    ):
        super().__init__(name)
        self.out_pos = out_pos
        self.out_neg = out_neg
        self.ctrl_pos = ctrl_pos
        self.ctrl_neg = ctrl_neg
        self.gm = float(gm)

    def nodes(self):
        return (self.out_pos, self.out_neg, self.ctrl_pos, self.ctrl_neg)

    def stamp(self, system) -> None:
        system.add_transconductance(
            self.out_pos, self.out_neg, self.ctrl_pos, self.ctrl_neg, self.gm
        )


class Mosfet(Element):
    """Square-law (level-1) MOSFET with channel-length modulation.

    Parameters
    ----------
    drain / gate / source:
        Node names (bulk is tied to source).
    kp:
        Process transconductance ``k' W/L`` in A/V^2 (already includes the
        aspect ratio).
    vth:
        Threshold voltage (positive for both polarities; the sign handling
        of PMOS is internal).
    polarity:
        ``"nmos"`` or ``"pmos"``.
    lambda_:
        Channel-length modulation in 1/V.
    """

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        kp: float,
        vth: float,
        polarity: str = "nmos",
        lambda_: float = 0.05,
    ):
        super().__init__(name)
        if polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {polarity!r}")
        if kp <= 0:
            raise ValueError(f"kp must be positive, got {kp}")
        self.drain = drain
        self.gate = gate
        self.source = source
        self.kp = float(kp)
        self.vth = float(vth)
        self.polarity = polarity
        self.lambda_ = float(lambda_)

    def nodes(self):
        return (self.drain, self.gate, self.source)

    # ------------------------------------------------------------------
    def ids(self, vgs: float, vds: float) -> Tuple[float, float, float]:
        """Drain current and small-signal (gm, gds) at a bias point.

        Sign convention: arguments and the returned current are in the
        device's own polarity frame (already sign-flipped for PMOS by the
        stamping code).
        """
        if vds < 0:
            # Drain/source swap keeps the model symmetric.
            ids, gm, gds = self.ids(vgs - vds, -vds)
            return -ids, gm, gds + gm  # chain rule through the swap
        vov = vgs - self.vth
        if vov <= 0:
            return 0.0, 0.0, 0.0
        clm = 1.0 + self.lambda_ * vds
        if vds < vov:  # triode
            ids = self.kp * (vov * vds - 0.5 * vds**2) * clm
            gm = self.kp * vds * clm
            gds = (
                self.kp * (vov - vds) * clm
                + self.kp * (vov * vds - 0.5 * vds**2) * self.lambda_
            )
        else:  # saturation
            ids = 0.5 * self.kp * vov**2 * clm
            gm = self.kp * vov * clm
            gds = 0.5 * self.kp * vov**2 * self.lambda_
        return ids, gm, gds

    def stamp_newton(self, system, voltages) -> None:
        """Stamp the linearized device at the current Newton iterate."""
        sign = 1.0 if self.polarity == "nmos" else -1.0
        vd = system.voltage_of(self.drain, voltages)
        vg = system.voltage_of(self.gate, voltages)
        vs = system.voltage_of(self.source, voltages)
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        ids, gm, gds = self.ids(vgs, vds)
        # Companion model: i_drain = gm*vgs + gds*vds + ieq; the derivative
        # stamps are polarity-independent (the two sign flips cancel) while
        # the constant term carries the polarity sign.
        ieq = sign * (ids - gm * vgs - gds * vds)
        system.add_transconductance(self.drain, self.source, self.gate, self.source, gm)
        system.add_conductance(self.drain, self.source, gds)
        system.add_current(self.drain, -ieq)
        system.add_current(self.source, ieq)
