"""DC operating-point analysis: Newton-Raphson with gmin stepping.

Solves the nonlinear MNA equations at ``t = 0``.  Convergence strategy:

1. plain Newton from a flat (or supplied) initial guess;
2. if that fails, gmin stepping -- solve a sequence of problems with a
   shrinking conductance from every node to ground, warm-starting each from
   the previous solution (the classic SPICE homotopy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .elements import Capacitor, CurrentSource, Mosfet, Resistor, Vccs, VoltageSource
from .mna import MnaSystem
from .netlist import Circuit

__all__ = ["OperatingPoint", "dc_operating_point", "ConvergenceError"]


class ConvergenceError(RuntimeError):
    """Raised when the Newton iteration fails to converge."""


@dataclass
class OperatingPoint:
    """Result of a DC analysis.

    Attributes
    ----------
    voltages:
        Node name -> DC voltage.
    source_currents:
        Voltage-source name -> branch current (positive out of the + node
        through the external circuit).
    solution:
        Raw MNA unknown vector (used to warm-start transient analysis).
    iterations:
        Newton iterations spent (summed across gmin steps if any).
    """

    voltages: Dict[str, float]
    source_currents: Dict[str, float]
    solution: np.ndarray
    iterations: int

    def voltage(self, node: str) -> float:
        if node in ("0", "gnd", "GND"):
            return 0.0
        try:
            return self.voltages[node]
        except KeyError:
            raise KeyError(f"no node named {node!r}") from None


def _stamp_static(system: MnaSystem, time: float, gmin: float) -> None:
    """Stamp all non-Newton elements (linear, sources; capacitors open)."""
    branch = 0
    for element in system.circuit.elements:
        if isinstance(element, Resistor):
            element.stamp(system)
        elif isinstance(element, CurrentSource):
            element.stamp(system, time)
        elif isinstance(element, VoltageSource):
            element.stamp(system, branch, time)
            branch += 1
        elif isinstance(element, Vccs):
            element.stamp(system)
        elif isinstance(element, Capacitor):
            pass  # open circuit in DC
        elif isinstance(element, Mosfet):
            pass  # stamped per Newton iteration
        else:
            raise TypeError(f"unsupported element type {type(element).__name__}")
    if gmin > 0:
        system.add_gmin(gmin)


def _newton(
    system: MnaSystem,
    initial: np.ndarray,
    time: float,
    gmin: float,
    max_iterations: int,
    tolerance: float,
) -> Optional[np.ndarray]:
    """Newton iteration; returns the solution or None if not converged."""
    mosfets = [e for e in system.circuit.elements if isinstance(e, Mosfet)]
    solution = initial.copy()
    for _iteration in range(max_iterations):
        system.clear()
        _stamp_static(system, time, gmin)
        for mosfet in mosfets:
            mosfet.stamp_newton(system, solution)
        try:
            new_solution = system.solve()
        except np.linalg.LinAlgError:
            return None
        delta = np.max(np.abs(new_solution - solution))
        # Damp large voltage steps to keep the square-law model stable.
        step_limit = 0.5
        if delta > step_limit:
            new_solution = solution + step_limit / delta * (new_solution - solution)
        solution = new_solution
        if delta < tolerance:
            return solution
    return None


def dc_operating_point(
    circuit: Circuit,
    initial: Optional[np.ndarray] = None,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
    gmin: float = 1e-12,
) -> OperatingPoint:
    """Compute the DC operating point of a circuit.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    initial:
        Optional initial guess for the MNA unknowns.
    max_iterations:
        Newton iteration budget per attempt.
    tolerance:
        Convergence threshold on the max-norm update.
    gmin:
        Final node-to-ground conductance left in place (SPICE default-ish).

    Raises
    ------
    ConvergenceError
        If plain Newton and gmin stepping both fail.
    """
    system = MnaSystem(circuit)
    guess = (
        np.zeros(system.size) if initial is None else np.asarray(initial, dtype=float)
    )
    if guess.shape != (system.size,):
        raise ValueError(
            f"initial guess must have shape ({system.size},), got {guess.shape}"
        )

    iterations_used = 0
    solution = _newton(system, guess, 0.0, gmin, max_iterations, tolerance)
    if solution is None:
        # gmin stepping homotopy: heavy shunt first, relax geometrically.
        for exponent in range(3, 13):
            step_gmin = 10.0**-exponent
            solution = _newton(
                system, guess, 0.0, step_gmin, max_iterations, tolerance
            )
            iterations_used += max_iterations
            if solution is None:
                break
            guess = solution
        if solution is not None:
            solution = _newton(system, guess, 0.0, gmin, max_iterations, tolerance)
    if solution is None:
        raise ConvergenceError(
            f"DC analysis of {circuit.name!r} did not converge"
        )

    voltages = system.solution_voltages(solution)
    source_currents = {
        source.name: float(solution[system.branch_index(i)])
        for i, source in enumerate(system.sources)
    }
    return OperatingPoint(voltages, source_currents, solution, iterations_used)
