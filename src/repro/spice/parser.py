"""SPICE-style netlist text parser.

Turns a classic SPICE deck into a :class:`~repro.spice.Circuit`, so small
testbenches can be written as text instead of Python:

    * differential pair
    VDD vdd 0 1.2
    VIN inp 0 DC 0.65 AC
    IT  s   0 2e-4
    M1  d1 inp s NMOS kp=2e-3 vth=0.4
    R1  vdd d1 5k
    C1  d1 0 10f
    .end

Supported cards (first letter selects the element, SPICE-style):

* ``R<name> n+ n- value``
* ``C<name> n+ n- value``
* ``V<name> n+ n- [DC] value | PULSE(lo hi delay rise fall width [period])
  | SIN(offset ampl freq [delay]) | PWL(t1 v1 t2 v2 ...)``
* ``I<name> n+ n- [DC] value``
* ``G<name> out+ out- ctrl+ ctrl- gm``                    (VCCS)
* ``M<name> drain gate source NMOS|PMOS kp=.. vth=.. [lambda=..]``

Engineering suffixes (``f p n u m k meg g t``) are understood; ``*`` and
``;`` start comments; ``.end`` (and any other dot-card) is ignored.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .elements import (
    Capacitor,
    CurrentSource,
    Mosfet,
    PiecewiseLinear,
    Pulse,
    Resistor,
    Sine,
    Vccs,
    VoltageSource,
)
from .netlist import Circuit

__all__ = ["parse_netlist", "parse_value", "NetlistSyntaxError"]


class NetlistSyntaxError(ValueError):
    """Raised when a netlist card cannot be parsed."""

    def __init__(self, line_number: int, line: str, reason: str):
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(
    r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(meg|[tgkmunpf])?[a-z]*$",
    re.IGNORECASE,
)


def parse_value(token: str) -> float:
    """Parse a SPICE number with engineering suffix (``2.5k`` -> 2500.0).

    Trailing unit letters after the suffix are ignored (``10pF``, ``5kOhm``),
    as in SPICE.
    """
    match = _VALUE_RE.match(token.strip())
    if not match:
        raise ValueError(f"cannot parse numeric value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    if suffix is None:
        return base
    return base * _SUFFIXES[suffix.lower()]


def _split_params(tokens: List[str]) -> "tuple[List[str], dict]":
    """Separate positional tokens from ``key=value`` parameters."""
    positional: List[str] = []
    params = {}
    for token in tokens:
        if "=" in token:
            key, _, value = token.partition("=")
            params[key.lower()] = parse_value(value)
        else:
            positional.append(token)
    return positional, params


def _parse_waveform(tokens: List[str], line_number: int, line: str):
    """Parse the source-value part of a V/I card.

    Returns (dc_value, waveform) -- exactly one is non-None.
    """
    text = " ".join(tokens)
    # Strip a leading DC keyword.
    stripped = re.sub(r"^dc\s+", "", text, flags=re.IGNORECASE).strip()
    # Drop a trailing bare AC marker (we drive AC magnitude explicitly).
    stripped = re.sub(r"\s+ac(\s+[\d.eE+-]+)?$", "", stripped, flags=re.IGNORECASE)

    function = re.match(r"^(pulse|sin|pwl)\s*\((.*)\)$", stripped, re.IGNORECASE)
    if function:
        name = function.group(1).lower()
        arguments = [
            parse_value(v)
            for v in re.split(r"[,\s]+", function.group(2).strip())
            if v
        ]
        try:
            if name == "pulse":
                return None, Pulse(*arguments)
            if name == "sin":
                return None, Sine(*arguments)
            pairs = list(zip(arguments[0::2], arguments[1::2]))
            if 2 * len(pairs) != len(arguments):
                raise ValueError("PWL needs an even number of values")
            return None, PiecewiseLinear(pairs)
        except (TypeError, ValueError) as error:
            raise NetlistSyntaxError(line_number, line, str(error)) from None
    if not stripped:
        return 0.0, None
    try:
        return parse_value(stripped), None
    except ValueError as error:
        raise NetlistSyntaxError(line_number, line, str(error)) from None


def parse_netlist(text: str, name: Optional[str] = None) -> Circuit:
    """Parse a SPICE-style netlist into a :class:`Circuit`.

    The first line is treated as the title (as in SPICE) when it does not
    look like an element card; ``name`` overrides it.
    """
    lines = text.splitlines()
    circuit_name = name or "netlist"
    start = 0
    if lines:
        first = lines[0].strip()
        if first and first[0] not in "*.;" and not _looks_like_card(first):
            circuit_name = name or first
            start = 1
    circuit = Circuit(circuit_name)

    for line_number, raw in enumerate(lines[start:], start=start + 1):
        line = raw.split("*")[0].split(";")[0].strip()
        if not line or line.startswith("."):
            continue
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        try:
            if kind == "R":
                _require(tokens, 4, line_number, line)
                circuit.add(
                    Resistor(card, tokens[1], tokens[2], parse_value(tokens[3]))
                )
            elif kind == "C":
                _require(tokens, 4, line_number, line)
                circuit.add(
                    Capacitor(card, tokens[1], tokens[2], parse_value(tokens[3]))
                )
            elif kind == "V":
                _require(tokens, 4, line_number, line)
                dc, waveform = _parse_waveform(tokens[3:], line_number, line)
                circuit.add(
                    VoltageSource(
                        card, tokens[1], tokens[2], dc=dc or 0.0, waveform=waveform
                    )
                )
            elif kind == "I":
                _require(tokens, 4, line_number, line)
                dc, waveform = _parse_waveform(tokens[3:], line_number, line)
                circuit.add(
                    CurrentSource(
                        card, tokens[1], tokens[2], dc=dc or 0.0, waveform=waveform
                    )
                )
            elif kind == "G":
                _require(tokens, 6, line_number, line)
                circuit.add(
                    Vccs(
                        card,
                        tokens[1],
                        tokens[2],
                        tokens[3],
                        tokens[4],
                        parse_value(tokens[5]),
                    )
                )
            elif kind == "M":
                positional, params = _split_params(tokens[1:])
                if len(positional) < 4:
                    raise NetlistSyntaxError(
                        line_number, line, "MOSFET needs drain gate source model"
                    )
                polarity = positional[3].lower()
                if polarity not in ("nmos", "pmos"):
                    raise NetlistSyntaxError(
                        line_number, line, f"unknown model {positional[3]!r}"
                    )
                if "kp" not in params or "vth" not in params:
                    raise NetlistSyntaxError(
                        line_number, line, "MOSFET needs kp= and vth="
                    )
                circuit.add(
                    Mosfet(
                        card,
                        positional[0],
                        positional[1],
                        positional[2],
                        kp=params["kp"],
                        vth=params["vth"],
                        polarity=polarity,
                        lambda_=params.get("lambda", 0.05),
                    )
                )
            else:
                raise NetlistSyntaxError(
                    line_number, line, f"unknown element type {kind!r}"
                )
        except NetlistSyntaxError:
            raise
        except ValueError as error:
            raise NetlistSyntaxError(line_number, line, str(error)) from None
    return circuit


def _looks_like_card(line: str) -> bool:
    tokens = line.split()
    return len(tokens) >= 4 and tokens[0][0].upper() in "RCVIGM"


def _require(tokens: List[str], count: int, line_number: int, line: str) -> None:
    if len(tokens) < count:
        raise NetlistSyntaxError(
            line_number, line, f"expected at least {count} fields"
        )
