"""Fixed-step transient analysis (backward Euler with per-step Newton)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .dc import ConvergenceError, _stamp_static, dc_operating_point
from .elements import Capacitor, Mosfet
from .mna import MnaSystem
from .netlist import Circuit

__all__ = ["TransientResult", "transient"]


@dataclass
class TransientResult:
    """Waveforms from a transient run.

    Attributes
    ----------
    times:
        Time points including ``t = 0``, shape ``(T,)``.
    voltages:
        Node name -> waveform of shape ``(T,)``.
    """

    times: np.ndarray
    voltages: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        if node in ("0", "gnd", "GND"):
            return np.zeros_like(self.times)
        try:
            return self.voltages[node]
        except KeyError:
            raise KeyError(f"no node named {node!r}") from None

    def crossing_time(
        self, node: str, level: float, rising: bool = True
    ) -> Optional[float]:
        """First time the node crosses ``level`` (linear interpolation).

        Returns None if the waveform never crosses.  This is how delay
        measurements (e.g. SRAM read delay in a transistor-level testbench)
        are extracted from the waveforms.
        """
        wave = self.voltage(node)
        if rising:
            below = wave[:-1] < level
            above = wave[1:] >= level
        else:
            below = wave[:-1] > level
            above = wave[1:] <= level
        hits = np.flatnonzero(below & above)
        if hits.size == 0:
            return None
        i = int(hits[0])
        v0, v1 = wave[i], wave[i + 1]
        t0, t1 = self.times[i], self.times[i + 1]
        if v1 == v0:
            return float(t0)
        return float(t0 + (level - v0) / (v1 - v0) * (t1 - t0))


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    initial: str = "dc",
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    gmin: float = 1e-12,
) -> TransientResult:
    """Run a fixed-step backward-Euler transient analysis.

    Parameters
    ----------
    circuit:
        The netlist (sources may carry time-dependent waveforms).
    t_stop:
        End time in seconds.
    dt:
        Fixed time step in seconds.
    initial:
        ``"dc"`` starts from the operating point at ``t = 0``; ``"zero"``
        starts from all-zero node voltages (useful with initial-condition
        style source waveforms).
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    if initial not in ("dc", "zero"):
        raise ValueError(f"initial must be 'dc' or 'zero', got {initial!r}")

    system = MnaSystem(circuit)
    mosfets = [e for e in circuit.elements if isinstance(e, Mosfet)]
    capacitors = [e for e in circuit.elements if isinstance(e, Capacitor)]

    if initial == "dc":
        solution = dc_operating_point(circuit, gmin=gmin).solution
    else:
        solution = np.zeros(system.size)

    steps = int(np.ceil(t_stop / dt))
    times = np.linspace(0.0, steps * dt, steps + 1)
    node_names = circuit.node_names()
    waves = {name: np.empty(steps + 1) for name in node_names}
    for name in node_names:
        waves[name][0] = system.voltage_of(name, solution)

    for step in range(1, steps + 1):
        time = times[step]
        cap_prev = [
            system.voltage_of(c.node_a, solution)
            - system.voltage_of(c.node_b, solution)
            for c in capacitors
        ]
        iterate = solution.copy()
        converged = False
        for _ in range(max_iterations):
            system.clear()
            _stamp_static(system, time, gmin)
            for capacitor, prev in zip(capacitors, cap_prev):
                capacitor.stamp_transient(system, prev, dt)
            for mosfet in mosfets:
                mosfet.stamp_newton(system, iterate)
            new_iterate = system.solve()
            delta = float(np.max(np.abs(new_iterate - iterate)))
            if delta > 0.5:
                new_iterate = iterate + 0.5 / delta * (new_iterate - iterate)
            iterate = new_iterate
            if delta < tolerance:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"transient step at t={time:.3e}s did not converge"
            )
        solution = iterate
        for name in node_names:
            waves[name][step] = system.voltage_of(name, solution)

    return TransientResult(times, waves)
