"""Modified nodal analysis system assembly.

:class:`MnaSystem` is the dense matrix/right-hand-side pair the elements
stamp into.  Unknowns are the non-ground node voltages followed by one
branch current per voltage source.  The sign conventions:

* ``add_conductance(a, b, g)``   -- a two-terminal conductance between nodes;
* ``add_current(n, i)``          -- current ``i`` injected *into* node ``n``
  (i.e. added to the right-hand side);
* ``add_transconductance(...)``  -- VCCS: current ``gm * v(cp, cn)`` flows
  from ``out_pos`` through the element to ``out_neg``;
* ``add_voltage_source(...)``    -- the standard two extra MNA rows/columns.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .netlist import Circuit

__all__ = ["MnaSystem"]


class MnaSystem:
    """A stamped MNA matrix ``A`` and right-hand side ``z`` (``A u = z``)."""

    def __init__(self, circuit: Circuit, dtype=float):
        circuit.validate()
        self.circuit = circuit
        self.node_index: Dict[str, int] = circuit.node_index()
        self.num_nodes = len(circuit.node_names())
        self.sources = circuit.voltage_sources()
        self.size = self.num_nodes + len(self.sources)
        self.matrix = np.zeros((self.size, self.size), dtype=dtype)
        self.rhs = np.zeros(self.size, dtype=dtype)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Zero the matrix and right-hand side for re-stamping."""
        self.matrix[:] = 0
        self.rhs[:] = 0

    def _index(self, node: str) -> int:
        try:
            return self.node_index[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def voltage_of(self, node: str, solution: np.ndarray) -> float:
        """Voltage of a node in a solution vector (ground is 0)."""
        index = self._index(node)
        return 0.0 if index < 0 else float(solution[index].real)

    def branch_index(self, source_position: int) -> int:
        """Unknown index of the ``source_position``-th voltage source current."""
        return self.num_nodes + source_position

    # ------------------------------------------------------------------
    def add_conductance(self, node_a: str, node_b: str, conductance) -> None:
        a = self._index(node_a)
        b = self._index(node_b)
        if a >= 0:
            self.matrix[a, a] += conductance
        if b >= 0:
            self.matrix[b, b] += conductance
        if a >= 0 and b >= 0:
            self.matrix[a, b] -= conductance
            self.matrix[b, a] -= conductance

    def add_current(self, node: str, current) -> None:
        index = self._index(node)
        if index >= 0:
            self.rhs[index] += current

    def add_transconductance(
        self, out_pos: str, out_neg: str, ctrl_pos: str, ctrl_neg: str, gm
    ) -> None:
        op = self._index(out_pos)
        on = self._index(out_neg)
        cp = self._index(ctrl_pos)
        cn = self._index(ctrl_neg)
        for out_node, out_sign in ((op, 1.0), (on, -1.0)):
            if out_node < 0:
                continue
            if cp >= 0:
                self.matrix[out_node, cp] += out_sign * gm
            if cn >= 0:
                self.matrix[out_node, cn] -= out_sign * gm
        return None

    def add_voltage_source(
        self, node_pos: str, node_neg: str, branch: int, value
    ) -> None:
        row = self.branch_index(branch)
        pos = self._index(node_pos)
        neg = self._index(node_neg)
        if pos >= 0:
            self.matrix[pos, row] += 1.0
            self.matrix[row, pos] += 1.0
        if neg >= 0:
            self.matrix[neg, row] -= 1.0
            self.matrix[row, neg] -= 1.0
        self.rhs[row] += value

    def add_gmin(self, gmin: float) -> None:
        """Small conductance from every node to ground (Newton aid)."""
        diagonal = np.arange(self.num_nodes)
        self.matrix[diagonal, diagonal] += gmin

    # ------------------------------------------------------------------
    def solve(self) -> np.ndarray:
        """Solve the stamped system."""
        return np.linalg.solve(self.matrix, self.rhs)

    def solution_voltages(self, solution: np.ndarray) -> Dict[str, float]:
        """Map node name -> voltage for a solution vector."""
        return {
            name: float(solution[i].real)
            for name, i in self.node_index.items()
            if i >= 0
        }
