"""CLI for the synthetic-load harness and its report schema check.

Run a load::

    python -m repro.loadgen --requests 2000 --tenants 16 --shards 3 \\
        --kill-shard-after 1000 --output benchmarks/results/loadgen_serving.json

Run the slow-shard hedging scenario (nightly chaos CI)::

    python -m repro.loadgen --requests 400 --hedge --hedge-budget 0.1 \\
        --slow-shard-latency 0.05 --slow-shard-every 4 \\
        --output benchmarks/results/slowshard_hedge.json

Validate an existing report against the schema (CI's drift gate)::

    python -m repro.loadgen --check-schema benchmarks/results/loadgen_serving.json

Exit codes: 0 = success / valid report, 1 = schema violation or bad
arguments, 2 = the run itself failed its internal sanity checks (an
admitted request went unanswered).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from .harness import LoadConfig, run_load
from .report import validate_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Seeded synthetic-load harness for the sharded serving tier.",
    )
    parser.add_argument(
        "--check-schema",
        metavar="PATH",
        help="validate an existing JSON report against the schema and exit",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--models", type=int, default=8)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument(
        "--quota",
        type=int,
        default=None,
        help="per-tenant admission quota (requests per run; default: none)",
    )
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--kill-shard-after",
        type=int,
        default=None,
        metavar="N",
        help="kill one shard after N generated requests (default: never)",
    )
    parser.add_argument(
        "--kill-shard",
        type=int,
        default=None,
        help="shard id to kill (default: the first model's primary)",
    )
    parser.add_argument(
        "--overload-burst",
        type=int,
        default=0,
        help="saturation factor of the optional overload-burst phase",
    )
    parser.add_argument(
        "--hedge",
        action="store_true",
        help="enable hedged requests on the router",
    )
    parser.add_argument(
        "--hedge-budget",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="hedge token-bucket accrual per request (default: 0.05)",
    )
    parser.add_argument(
        "--hedge-max-delay",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="ceiling on the adaptive hedge delay (default: 1.0)",
    )
    parser.add_argument(
        "--slow-shard",
        type=int,
        default=None,
        help="shard id to slow down (default: the first model's primary)",
    )
    parser.add_argument(
        "--slow-shard-latency",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="inject this much latency into the slow shard's evaluations",
    )
    parser.add_argument(
        "--slow-shard-every",
        type=int,
        default=1,
        metavar="N",
        help="stall every Nth evaluation on the slow shard (default: 1)",
    )
    parser.add_argument(
        "--brownout",
        action="store_true",
        help="enable brownout shedding of low-priority work",
    )
    parser.add_argument(
        "--low-priority-fraction",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="seeded fraction of traffic submitted at PRIORITY_LOW",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory (replication log); default: a fresh temp dir",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the schema-validated JSON report here",
    )
    return parser


def _check_schema(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: could not read {path!r}: {exc}", file=sys.stderr)
        return 1
    try:
        validate_report(data)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{path}: valid loadgen report (schema_version {data['schema_version']})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.check_schema is not None:
        return _check_schema(args.check_schema)

    try:
        config = LoadConfig(
            seed=args.seed,
            num_requests=args.requests,
            num_tenants=args.tenants,
            num_models=args.models,
            num_shards=args.shards,
            replication_factor=args.replication,
            tenant_quota=args.quota,
            max_queue_depth=args.queue_depth,
            workers=args.workers,
            kill_shard_after=args.kill_shard_after,
            kill_shard=args.kill_shard,
            overload_burst=args.overload_burst,
            hedge=args.hedge,
            hedge_budget_fraction=args.hedge_budget,
            hedge_max_delay_seconds=args.hedge_max_delay,
            slow_shard=args.slow_shard,
            slow_shard_latency_seconds=args.slow_shard_latency,
            slow_shard_every=args.slow_shard_every,
            brownout=args.brownout,
            low_priority_fraction=args.low_priority_fraction,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.store is not None:
        report = run_load(config, Path(args.store))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
            report = run_load(config, Path(tmp))

    print(report.format())
    if args.output is not None:
        path = report.write_json(args.output)
        print(f"[report written to {path}]")
    # An admitted request that neither answered nor failed-by-policy means
    # the serving tier dropped work on the floor -- fail loudly.
    unanswered = report.admitted - report.answered - report.failed - report.expired
    if unanswered != 0 or report.failed != 0:
        print(
            f"error: {report.failed} failed / {unanswered} unaccounted "
            "admitted requests",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
