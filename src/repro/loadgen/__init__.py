"""Synthetic-load harness for the sharded serving tier.

Seeded, multi-tenant load generation against
:class:`~repro.serving.ShardRouter` (per-tenant admission quotas layered
on the engines' bounded-queue shedding, optional shard-kill mid-traffic,
optional overload burst), emitting the schema-checked JSON perf report CI
archives under ``benchmarks/results/``.  See ``docs/serving.md`` and
``python -m repro.loadgen --help``.
"""

from .harness import LoadConfig, run_load
from .report import (
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    LoadReport,
    latency_percentiles,
    validate_report,
)

__all__ = [
    "LoadConfig",
    "LoadReport",
    "REPORT_SCHEMA",
    "SCHEMA_VERSION",
    "latency_percentiles",
    "run_load",
    "validate_report",
]
