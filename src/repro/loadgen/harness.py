"""Seeded synthetic-load harness for the sharded serving tier.

Drives high request volumes from many simulated tenants against a
:class:`~repro.serving.ShardRouter`, with a per-tenant **admission
quota** layered on top of the engines' ``max_queue_depth`` shedding:

1. **publish** -- ``num_models`` synthetic models (seeded coefficients on
   a shared Hermite basis) are published through the router; the shared
   store journal replicates each one to its ring replicas at publish
   time;
2. **traffic** -- ``num_requests`` requests are generated from the seed
   (tenant, model, and query rows are all seeded draws).  A tenant over
   its quota is rejected at the harness gate (``loadgen.quota_rejected``)
   without ever touching an engine; everything else is submitted and
   awaited sequentially, so the outcome counts are a pure function of
   the seed.  Optionally, ``kill_shard_after`` kills one shard
   mid-traffic: the router rebalances its names to survivors whose
   followers already hold warm replicas, and the harness keeps driving;
3. **overload burst** (optional) -- with one engine's dispatcher paused,
   the queue is saturated with already-expired requests and then hit
   with a 2x-bound burst of live ones, exercising
   shed-oldest-expired-then-reject admission control with deterministic
   counts.

The result is a :class:`~repro.loadgen.report.LoadReport`: latency
percentiles (p50/p99/p999), throughput, and the full deterministic
event-count signature, serializable to the schema-checked JSON that CI
archives under ``benchmarks/results/``.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..basis import OrthonormalBasis
from ..faults import Deadline, DeadlineExpiredError, FaultPlan, inject
from ..regression.base import FittedModel
from ..runtime.metrics import counters_delta, metrics
from ..serving import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    BrownoutController,
    BrownoutShedError,
    EngineOverloadedError,
    HedgePolicy,
    ShardRouter,
)
from .report import LoadReport, latency_percentiles

__all__ = ["LoadConfig", "run_load"]


@dataclass(frozen=True)
class LoadConfig:
    """Frozen configuration of one synthetic-load run.

    Everything random in the run -- model coefficients, tenant/model
    assignment per request, query rows -- derives from ``seed`` alone.
    """

    seed: int = 0
    num_requests: int = 1000
    num_tenants: int = 8
    num_models: int = 8
    num_shards: int = 2
    replication_factor: int = 2
    #: Max requests a tenant may submit per run; ``None`` disables the gate.
    tenant_quota: Optional[int] = None
    max_queue_depth: int = 64
    workers: int = 2
    #: Dispatcher linger; zero keeps sequential-await latency flat.
    max_delay_seconds: float = 0.0
    request_timeout_seconds: float = 30.0
    rows_per_request: int = 1
    basis_vars: int = 4
    basis_degree: int = 2
    #: Kill one shard after this many generated requests (``None`` = never).
    kill_shard_after: Optional[int] = None
    #: Which shard to kill; ``None`` picks the first model's primary, so
    #: the kill is guaranteed to rebalance at least one key.
    kill_shard: Optional[int] = None
    #: Saturation factor of the optional overload-burst phase (0 = skip):
    #: the queue is filled with ``max_queue_depth`` expired requests, then
    #: ``overload_burst * max_queue_depth`` live ones are submitted.
    overload_burst: int = 0
    #: Enable hedged requests on the router (see ``docs/serving.md``,
    #: "Health, hedging, and brownout").
    hedge: bool = False
    hedge_budget_fraction: float = 0.05
    hedge_min_samples: int = 16
    hedge_initial_delay_seconds: float = 0.05
    hedge_min_delay_seconds: float = 0.001
    hedge_max_delay_seconds: float = 1.0
    #: Inject latency into one shard's ``engine.evaluate`` during the
    #: traffic phase (the slow-shard chaos scenario).  ``slow_shard=None``
    #: with a positive latency degrades the first model's primary, so the
    #: slow shard is guaranteed to serve traffic.
    slow_shard: Optional[int] = None
    slow_shard_latency_seconds: float = 0.0
    slow_shard_every: int = 1
    #: Enable brownout shedding (engines reject low-priority work while
    #: their health score is degraded).
    brownout: bool = False
    #: Seeded fraction of traffic submitted at ``PRIORITY_LOW``.
    low_priority_fraction: float = 0.0

    def __post_init__(self):
        for name in (
            "num_requests",
            "num_tenants",
            "num_models",
            "num_shards",
            "replication_factor",
            "max_queue_depth",
            "workers",
            "rows_per_request",
            "basis_vars",
            "basis_degree",
        ):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.tenant_quota is not None and self.tenant_quota < 0:
            raise ValueError(
                f"tenant_quota must be >= 0 or None, got {self.tenant_quota}"
            )
        if self.kill_shard_after is not None and not (
            0 <= self.kill_shard_after <= self.num_requests
        ):
            raise ValueError(
                f"kill_shard_after must be in [0, {self.num_requests}], "
                f"got {self.kill_shard_after}"
            )
        if self.kill_shard is not None and not (
            0 <= self.kill_shard < self.num_shards
        ):
            raise ValueError(
                f"kill_shard must be in [0, {self.num_shards}), "
                f"got {self.kill_shard}"
            )
        if self.overload_burst < 0:
            raise ValueError(
                f"overload_burst must be >= 0, got {self.overload_burst}"
            )
        if self.request_timeout_seconds <= 0:
            raise ValueError(
                "request_timeout_seconds must be > 0, got "
                f"{self.request_timeout_seconds}"
            )
        if not 0.0 < self.hedge_budget_fraction <= 1.0:
            raise ValueError(
                "hedge_budget_fraction must be in (0, 1], got "
                f"{self.hedge_budget_fraction}"
            )
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got {self.hedge_min_samples}"
            )
        for name in (
            "hedge_initial_delay_seconds",
            "hedge_min_delay_seconds",
            "hedge_max_delay_seconds",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        if self.hedge_min_delay_seconds > self.hedge_max_delay_seconds:
            raise ValueError(
                "hedge_min_delay_seconds must be <= hedge_max_delay_seconds"
            )
        if self.slow_shard is not None and not (
            0 <= self.slow_shard < self.num_shards
        ):
            raise ValueError(
                f"slow_shard must be in [0, {self.num_shards}), "
                f"got {self.slow_shard}"
            )
        if self.slow_shard_latency_seconds < 0:
            raise ValueError(
                "slow_shard_latency_seconds must be >= 0, got "
                f"{self.slow_shard_latency_seconds}"
            )
        if self.slow_shard_every < 1:
            raise ValueError(
                f"slow_shard_every must be >= 1, got {self.slow_shard_every}"
            )
        if not 0.0 <= self.low_priority_fraction <= 1.0:
            raise ValueError(
                "low_priority_fraction must be in [0, 1], got "
                f"{self.low_priority_fraction}"
            )


def _model_name(index: int) -> str:
    return f"model-{index:04d}"


def _expired_deadline() -> Deadline:
    deadline = Deadline.after(1e-9)
    while not deadline.expired:  # nanosecond fuse; burns out instantly
        pass
    return deadline


def run_load(config: LoadConfig, store_root) -> LoadReport:
    """Run the synthetic-load harness; returns the structured report.

    ``store_root`` is the directory backing the shared
    :class:`~repro.store.ModelStore` (the replication log); a fresh
    temporary directory gives a hermetic run.
    """
    rng = np.random.default_rng(config.seed)
    basis = OrthonormalBasis.total_degree(config.basis_vars, config.basis_degree)
    counters_before = metrics.counters()

    quota_rejected = submitted = 0
    shed_rejected = answered = failed = expired = 0
    post_kill_admitted = post_kill_answered = 0
    burst_staged = burst_submitted = burst_rejected = burst_answered = 0
    brownout_shed = 0
    killed_shard: Optional[int] = None
    tenant_admitted: Dict[str, int] = {}
    latencies: List[float] = []

    hedge_policy = (
        HedgePolicy(
            budget_fraction=config.hedge_budget_fraction,
            min_samples=config.hedge_min_samples,
            initial_delay_seconds=config.hedge_initial_delay_seconds,
            min_delay_seconds=config.hedge_min_delay_seconds,
            max_delay_seconds=config.hedge_max_delay_seconds,
        )
        if config.hedge
        else None
    )
    engine_kwargs = {
        "max_queue_depth": config.max_queue_depth,
        "workers": config.workers,
        "max_delay_seconds": config.max_delay_seconds,
    }
    if config.brownout:
        # One controller shared by every shard: the harness wants fleet-wide
        # shed counts, and admit() takes the per-engine score per call.
        engine_kwargs["brownout"] = BrownoutController()

    router = ShardRouter(
        store_root,
        num_shards=config.num_shards,
        replication_factor=config.replication_factor,
        engine_kwargs=engine_kwargs,
        hedge=hedge_policy,
    )
    with router:
        # ----- Phase 1: publish the synthetic model fleet ---------------
        names = [_model_name(index) for index in range(config.num_models)]
        for name in names:
            coefficients = rng.normal(size=basis.size)
            router.publish(name, FittedModel(basis, coefficients))

        kill_target = config.kill_shard
        if kill_target is None:
            kill_target = router.primary(names[0])

        slow_target: Optional[int] = None
        if config.slow_shard_latency_seconds > 0:
            slow_target = config.slow_shard
            if slow_target is None:
                # Degrade the first model's primary so the slow shard is
                # guaranteed to serve (and therefore stall) real traffic.
                slow_target = router.primary(names[0])

        # A fixed seeded pool of query rows: requests index into it, so
        # the design-matrix cache sees realistic repetition.
        pool = rng.normal(size=(max(64, config.rows_per_request), basis.num_vars))

        # ----- Phase 2: seeded tenant traffic (sequential awaits) -------
        fault_scope = contextlib.ExitStack()
        if slow_target is not None:
            fault_scope.enter_context(
                inject(
                    FaultPlan.latency(
                        "engine.evaluate",
                        config.slow_shard_latency_seconds,
                        every=config.slow_shard_every,
                        tag=f"shard-{slow_target}",
                    )
                )
            )
        with fault_scope:
            traffic_start = time.perf_counter()
            for index in range(config.num_requests):
                if (
                    config.kill_shard_after is not None
                    and index == config.kill_shard_after
                    and killed_shard is None
                ):
                    router.kill_shard(kill_target)
                    killed_shard = kill_target
                tenant = f"tenant-{int(rng.integers(config.num_tenants)):03d}"
                name = names[int(rng.integers(config.num_models))]
                rows = rng.integers(0, pool.shape[0], size=config.rows_per_request)
                x = pool[rows]
                priority = PRIORITY_NORMAL
                if (
                    config.low_priority_fraction > 0
                    and rng.random() < config.low_priority_fraction
                ):
                    priority = PRIORITY_LOW
                if (
                    config.tenant_quota is not None
                    and tenant_admitted.get(tenant, 0) >= config.tenant_quota
                ):
                    quota_rejected += 1
                    continue
                tenant_admitted[tenant] = tenant_admitted.get(tenant, 0) + 1
                submitted += 1
                start = time.perf_counter()
                try:
                    future = router.submit(name, x, priority=priority)
                except BrownoutShedError:
                    brownout_shed += 1
                    shed_rejected += 1
                    continue
                except EngineOverloadedError:
                    shed_rejected += 1
                    continue
                if killed_shard is not None:
                    post_kill_admitted += 1
                try:
                    future.result(timeout=config.request_timeout_seconds)
                except DeadlineExpiredError:
                    expired += 1
                except Exception:
                    failed += 1
                else:
                    answered += 1
                    if killed_shard is not None:
                        post_kill_answered += 1
                    latencies.append(time.perf_counter() - start)
            duration = time.perf_counter() - traffic_start

        # ----- Phase 3: optional deterministic overload burst -----------
        if config.overload_burst > 0:
            burst_name = names[0]
            engine = router.engine_for(burst_name)
            engine.pause_dispatch()
            stale = _expired_deadline()
            staged = []
            for _ in range(config.max_queue_depth):
                staged.append(engine.submit(burst_name, pool[0], deadline=stale))
            burst_staged = len(staged)
            live = []
            for _ in range(config.overload_burst * config.max_queue_depth):
                burst_submitted += 1
                try:
                    live.append(
                        engine.submit(
                            burst_name,
                            pool[0],
                            timeout=config.request_timeout_seconds,
                        )
                    )
                except EngineOverloadedError:
                    burst_rejected += 1
            engine.resume_dispatch()
            for future in live:
                try:
                    future.result(timeout=config.request_timeout_seconds)
                except Exception:
                    continue  # unanswered: absent from burst_answered
                burst_answered += 1
            for future in staged:  # shed futures resolve with an exception
                future.exception(timeout=config.request_timeout_seconds)

        max_version_lag = router.max_version_lag()
        hedge_stats = router.hedge_stats() or {}
        router_stats = router.stats()
        shed_expired_total = sum(
            int(shard_stats["shed_expired"])
            for shard_stats in router_stats["shards"].values()
        )

    delta = counters_delta(counters_before, metrics.counters())
    metrics.increment("loadgen.requests", config.num_requests)
    metrics.increment("loadgen.quota_rejected", quota_rejected)
    metrics.increment("loadgen.answered", answered + burst_answered)
    metrics.increment("loadgen.failed", failed)
    metrics.increment("loadgen.shed", shed_rejected + burst_rejected)

    return LoadReport(
        seed=config.seed,
        num_requests=config.num_requests,
        num_tenants=config.num_tenants,
        num_models=config.num_models,
        num_shards=config.num_shards,
        replication_factor=min(config.replication_factor, config.num_shards),
        tenant_quota=config.tenant_quota,
        max_queue_depth=config.max_queue_depth,
        rows_per_request=config.rows_per_request,
        kill_shard_after=config.kill_shard_after,
        killed_shard=killed_shard,
        hedge_enabled=config.hedge,
        brownout_enabled=config.brownout,
        slow_shard=slow_target,
        slow_shard_latency_ms=config.slow_shard_latency_seconds * 1e3,
        submitted=submitted,
        admitted=submitted - shed_rejected,
        answered=answered,
        failed=failed,
        quota_rejected=quota_rejected,
        shed_rejected=shed_rejected,
        shed_expired=shed_expired_total,
        expired=expired,
        post_kill_admitted=post_kill_admitted,
        post_kill_answered=post_kill_answered,
        burst_staged=burst_staged,
        burst_submitted=burst_submitted,
        burst_rejected=burst_rejected,
        burst_answered=burst_answered,
        hedged=int(hedge_stats.get("attempts", 0)),
        hedge_wins=int(hedge_stats.get("wins", 0)),
        hedge_primary_wins=int(hedge_stats.get("primary_wins", 0)),
        hedge_budget_denied=int(hedge_stats.get("budget_denied", 0)),
        hedge_cancelled=int(hedge_stats.get("cancelled", 0)),
        brownout_shed=brownout_shed,
        rebalanced_keys=int(router_stats["rebalanced_keys"]),
        failovers=int(router_stats["failovers"]),
        failover_routes=delta.get("serving.shard.failover_routes", 0),
        replica_applied=delta.get("serving.shard.replica_applied", 0),
        backfills=delta.get("serving.shard.backfills", 0),
        max_version_lag=max_version_lag,
        throughput_rps=answered / duration if duration > 0 else 0.0,
        duration_seconds=duration,
        tenant_admitted=tenant_admitted,
        **latency_percentiles(latencies),
    )
