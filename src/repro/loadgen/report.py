"""Machine-readable load-harness report: schema, validation, serialization.

Every harness run emits one flat JSON object into ``benchmarks/results/``
so the perf trajectory becomes trackable across PRs.  The schema below is
the contract CI enforces (``python -m repro.loadgen --check-schema``):
a key disappearing or changing type fails the build instead of silently
drifting, and downstream tooling can consume the files without guessing.

Latency percentiles are wall-clock and vary run to run; everything under
:meth:`LoadReport.deterministic_signature` is integer event counting and
must be bitwise identical across same-seed runs (the shard-kill chaos
scenario asserts exactly that).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "LoadReport",
    "REPORT_SCHEMA",
    "SCHEMA_VERSION",
    "latency_percentiles",
    "validate_report",
]

SCHEMA_VERSION = 2

#: The report contract: key -> allowed JSON types.  ``"int"`` means a
#: JSON integer (bools excluded), ``"float"`` accepts integers too (JSON
#: has one number type), ``"bool"`` is a JSON boolean, ``"null"`` allows
#: ``None``.
REPORT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "schema_version": ("int",),
    "kind": ("str",),
    # -- configuration echo ------------------------------------------------
    "seed": ("int",),
    "num_requests": ("int",),
    "num_tenants": ("int",),
    "num_models": ("int",),
    "num_shards": ("int",),
    "replication_factor": ("int",),
    "tenant_quota": ("int", "null"),
    "max_queue_depth": ("int",),
    "rows_per_request": ("int",),
    "kill_shard_after": ("int", "null"),
    "killed_shard": ("int", "null"),
    "hedge_enabled": ("bool",),
    "brownout_enabled": ("bool",),
    "slow_shard": ("int", "null"),
    "slow_shard_latency_ms": ("float",),
    # -- admission / outcome counts (deterministic) ------------------------
    "submitted": ("int",),
    "admitted": ("int",),
    "answered": ("int",),
    "failed": ("int",),
    "quota_rejected": ("int",),
    "shed_rejected": ("int",),
    "shed_expired": ("int",),
    "expired": ("int",),
    "post_kill_admitted": ("int",),
    "post_kill_answered": ("int",),
    "burst_staged": ("int",),
    "burst_submitted": ("int",),
    "burst_rejected": ("int",),
    "burst_answered": ("int",),
    # -- hedging / brownout counts (timing-dependent; not in the signature) -
    "hedged": ("int",),
    "hedge_wins": ("int",),
    "hedge_primary_wins": ("int",),
    "hedge_budget_denied": ("int",),
    "hedge_cancelled": ("int",),
    "brownout_shed": ("int",),
    # -- sharding / replication counts (deterministic) ---------------------
    "rebalanced_keys": ("int",),
    "failovers": ("int",),
    "failover_routes": ("int",),
    "replica_applied": ("int",),
    "backfills": ("int",),
    "max_version_lag": ("int",),
    # -- latency / throughput (wall-clock; excluded from the signature) ----
    "latency_p50_ms": ("float",),
    "latency_p99_ms": ("float",),
    "latency_p999_ms": ("float",),
    "latency_mean_ms": ("float",),
    "latency_max_ms": ("float",),
    "throughput_rps": ("float",),
    "duration_seconds": ("float",),
}

_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_report(data: Dict[str, object]) -> None:
    """Check ``data`` against :data:`REPORT_SCHEMA`; raises ``ValueError``.

    Enforced both ways: every schema key must be present with an allowed
    type, and no unknown key may appear -- additions go through the
    schema (and therefore through review), never around it.
    """
    if not isinstance(data, dict):
        raise ValueError(f"report must be a JSON object, got {type(data).__name__}")
    problems: List[str] = []
    for key, allowed in REPORT_SCHEMA.items():
        if key not in data:
            problems.append(f"missing key {key!r}")
            continue
        value = data[key]
        if not any(_TYPE_CHECKS[kind](value) for kind in allowed):
            problems.append(
                f"key {key!r} has type {type(value).__name__}, "
                f"expected one of {allowed}"
            )
    for key in data:
        if key not in REPORT_SCHEMA:
            problems.append(f"unknown key {key!r} (schema additions must be explicit)")
    if problems:
        raise ValueError(
            "load report failed schema validation: " + "; ".join(sorted(problems))
        )


def latency_percentiles(latencies_seconds: Sequence[float]) -> Dict[str, float]:
    """p50/p99/p999 (plus mean/max) of per-request latencies, in ms."""
    if len(latencies_seconds) == 0:
        return {
            "latency_p50_ms": 0.0,
            "latency_p99_ms": 0.0,
            "latency_p999_ms": 0.0,
            "latency_mean_ms": 0.0,
            "latency_max_ms": 0.0,
        }
    values = np.asarray(latencies_seconds, dtype=float) * 1e3
    p50, p99, p999 = np.percentile(values, [50.0, 99.0, 99.9])
    return {
        "latency_p50_ms": float(p50),
        "latency_p99_ms": float(p99),
        "latency_p999_ms": float(p999),
        "latency_mean_ms": float(values.mean()),
        "latency_max_ms": float(values.max()),
    }


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one :func:`repro.loadgen.run_load` harness run.

    ``to_dict()`` renders exactly the :data:`REPORT_SCHEMA` shape;
    :meth:`write_json` validates before writing, so an emitted file can
    never be schema-invalid.
    """

    # configuration echo
    seed: int
    num_requests: int
    num_tenants: int
    num_models: int
    num_shards: int
    replication_factor: int
    tenant_quota: Optional[int]
    max_queue_depth: int
    rows_per_request: int
    kill_shard_after: Optional[int]
    killed_shard: Optional[int]
    hedge_enabled: bool
    brownout_enabled: bool
    slow_shard: Optional[int]
    slow_shard_latency_ms: float
    # deterministic outcome counts
    submitted: int
    admitted: int
    answered: int
    failed: int
    quota_rejected: int
    shed_rejected: int
    shed_expired: int
    expired: int
    post_kill_admitted: int
    post_kill_answered: int
    burst_staged: int
    burst_submitted: int
    burst_rejected: int
    burst_answered: int
    # timing-dependent tail-tolerance counts (excluded from the signature)
    hedged: int
    hedge_wins: int
    hedge_primary_wins: int
    hedge_budget_denied: int
    hedge_cancelled: int
    brownout_shed: int
    rebalanced_keys: int
    failovers: int
    failover_routes: int
    replica_applied: int
    backfills: int
    max_version_lag: int
    # wall-clock measurements
    latency_p50_ms: float
    latency_p99_ms: float
    latency_p999_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    throughput_rps: float
    duration_seconds: float
    #: Per-tenant admitted counts (not serialized; signature material).
    tenant_admitted: Dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def answered_fraction(self) -> float:
        """Fraction of admitted requests that got a prediction."""
        return self.answered / self.admitted if self.admitted else 0.0

    def deterministic_signature(self) -> Dict[str, object]:
        """Everything that must be bitwise identical across same-seed runs.

        Latency and throughput are wall-clock and deliberately excluded;
        what remains is pure event counting driven by the seed (with
        requests awaited sequentially, ``concurrency`` semantics of the
        harness).  Hedge and brownout *event counts* depend on whether a
        hedge timer fired before the primary answered -- pure timing --
        so they are excluded too; the *configuration* that enables them
        (``hedge_enabled``, ``brownout_enabled``, ``slow_shard``) is part
        of the signature, because two runs with different tail-tolerance
        settings are not the same scenario.
        """
        return {
            "seed": self.seed,
            "hedge_enabled": self.hedge_enabled,
            "brownout_enabled": self.brownout_enabled,
            "slow_shard": self.slow_shard,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "answered": self.answered,
            "failed": self.failed,
            "quota_rejected": self.quota_rejected,
            "shed_rejected": self.shed_rejected,
            "shed_expired": self.shed_expired,
            "expired": self.expired,
            "post_kill_admitted": self.post_kill_admitted,
            "post_kill_answered": self.post_kill_answered,
            "burst_staged": self.burst_staged,
            "burst_submitted": self.burst_submitted,
            "burst_rejected": self.burst_rejected,
            "burst_answered": self.burst_answered,
            "rebalanced_keys": self.rebalanced_keys,
            "failovers": self.failovers,
            "failover_routes": self.failover_routes,
            "replica_applied": self.replica_applied,
            "backfills": self.backfills,
            "max_version_lag": self.max_version_lag,
            "killed_shard": self.killed_shard,
            "tenant_admitted": dict(sorted(self.tenant_admitted.items())),
        }

    def to_dict(self) -> Dict[str, object]:
        """The schema-shaped JSON object (see :data:`REPORT_SCHEMA`)."""
        data = asdict(self)
        data.pop("tenant_admitted")
        data["schema_version"] = SCHEMA_VERSION
        data["kind"] = "loadgen"
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def write_json(self, path) -> Path:
        """Validate against the schema and write the report file."""
        data = self.to_dict()
        validate_report(data)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    def format(self) -> str:
        """Human-readable summary (the JSON file stays the machine contract)."""
        lines = [
            f"Synthetic load run (seed {self.seed})",
            f"  shards x replication : {self.num_shards} x {self.replication_factor}",
            f"  tenants / models     : {self.num_tenants} / {self.num_models}",
            f"  submitted            : {self.submitted}"
            f" (admitted {self.admitted}, quota-rejected {self.quota_rejected})",
            f"  answered             : {self.answered}"
            f" ({self.answered_fraction * 100:.1f}% of admitted,"
            f" {self.failed} failed)",
            f"  shed (rej/exp)       : {self.shed_rejected}/{self.shed_expired}",
            f"  kill/rebalance       : shard {self.killed_shard} after "
            f"{self.kill_shard_after} requests,"
            f" {self.rebalanced_keys} keys rebalanced,"
            f" {self.backfills} backfills",
            f"  post-kill answered   : {self.post_kill_answered}"
            f"/{self.post_kill_admitted}",
            f"  hedging              : "
            + (
                f"{self.hedged} hedged ({self.hedge_wins} backup wins,"
                f" {self.hedge_budget_denied} budget-denied,"
                f" {self.brownout_shed} brownout-shed)"
                if self.hedge_enabled or self.brownout_enabled
                else "off"
            ),
            f"  latency p50/p99/p999 : {self.latency_p50_ms:.3f}"
            f"/{self.latency_p99_ms:.3f}/{self.latency_p999_ms:.3f} ms",
            f"  throughput           : {self.throughput_rps:.0f} req/s",
        ]
        return "\n".join(lines)
