"""Warm-restart recovery: rebuild the serving state from the model store.

After a crash (or an ordinary restart) the serving process owns nothing
but the store directory.  :class:`RecoveryManager` turns that directory
back into a live :class:`~repro.serving.ModelRegistry`:

1. **scan** -- every committed record is read and CRC-validated; corrupt
   or torn records (a lost-fsync crash can rename a half-written file
   into place) are moved to ``quarantine/`` and counted as
   ``store.corrupt_quarantined`` -- they are never served;
2. **restore** -- valid records are re-admitted in ``(name, version)``
   order with their original version numbers, keys, and timestamps via
   :meth:`~repro.serving.ModelRegistry.restore`, so the rebuilt registry
   is *bitwise identical* (per :meth:`~repro.serving.ModelRegistry.snapshot`)
   to the pre-crash registry over the records that reached disk;
3. **re-arm** -- the newest record of a name that carries sequential
   fitter state (samples + dual Cholesky factor) can warm-restart a
   fresh :class:`~repro.bmf.SequentialBmf` through
   :meth:`RecoveryReport.sequential_state`, so streaming fits resume
   border-updating instead of refitting from scratch.

The journal is an audit log, not the source of truth: a valid record the
journal does not mention (crash between the rename commit point and the
journal append) is still recovered, and a journal entry whose record file
is missing (crash before the rename) is reported, not fabricated.

Two recovery modes:

* :meth:`RecoveryManager.recover` -- full crash recovery: every valid
  record on disk is admitted, journaled or not;
* :meth:`RecoveryManager.recover_at` -- **point-in-time recovery**: the
  journal *is* the definition of the prefix.  ``recover_at(k)`` rebuilds
  exactly the state after the first ``k`` global journal entries -- the
  compacted generation's snapshot stands in for the retired prefix, so
  any ``k`` between the checkpoint offset and the journal end is
  reachable (earlier offsets were compacted away and raise
  ``ValueError``).

Compaction also leaves an audit trail recovery surfaces: records that
were journaled in a retired generation but failed validation during
compaction appear in :attr:`RecoveryReport.compaction_quarantined` (their
bytes sit in ``quarantine/`` with a generation-tagged ``.reason``
sidecar) -- they are neither served, nor restored, nor double-counted as
missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from ..bmf.sequential import SequentialFitterState
from ..regression.base import FittedModel
from ..runtime.metrics import metrics
from ..serving.registry import ModelRegistry, PublishRejectedError
from .format import CorruptRecordError, ModelRecord
from .store import JournalEntry, ModelStore

__all__ = ["RecoveryManager", "RecoveryReport"]


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`RecoveryManager.recover` pass found and rebuilt."""

    #: The rebuilt (or caller-supplied) registry, ready to serve.
    registry: ModelRegistry
    #: ``(name, version)`` of every record re-admitted, in restore order.
    restored: Tuple[Tuple[str, int], ...]
    #: ``(name, version, reason)`` for CRC-valid records the registry
    #: refused (e.g. non-finite coefficients); quarantined, never served.
    rejected: Tuple[Tuple[str, int, str], ...]
    #: Final quarantine paths of corrupt, torn, or rejected records.
    quarantined: Tuple[Path, ...]
    #: Journal entries whose record never reached disk (crash pre-rename).
    missing: Tuple[JournalEntry, ...]
    #: Valid records the journal did not mention (crash post-rename).
    unjournaled: Tuple[Tuple[str, int], ...]
    #: Trailing journal lines dropped as torn.
    torn_journal_lines: int
    #: Newest restored record per name (the basis for warm restarts).
    latest: Mapping[str, ModelRecord] = field(default_factory=dict)
    #: Live generation id the recovery ran against (0 before compaction).
    generation: int = 0
    #: Global journal offset the generation's snapshot stands in for.
    checkpoint_offset: int = 0
    #: ``(name, version, filename)`` journaled in a retired generation but
    #: quarantined by compaction: present in ``quarantine/`` with a
    #: generation-tagged ``.reason`` sidecar, absent from both
    #: :attr:`restored` and :attr:`missing`.
    compaction_quarantined: Tuple[Tuple[str, int, str], ...] = ()

    def sequential_state(self, name: str) -> Optional[SequentialFitterState]:
        """Warm-restart state for ``name``'s newest restored record.

        Returns ``None`` when the name is unknown or its newest record
        was published without sequential context (e.g. a plain
        ``FittedModel`` publish).  Feed the result to
        :meth:`repro.bmf.SequentialBmf.rearm` on a fresh fitter built
        with the *same* configuration as the crashed one.
        """
        record = self.latest.get(name)
        if record is None or record.train_x is None or record.train_f is None:
            return None
        return SequentialFitterState(
            x=record.train_x,
            f=record.train_f,
            chol_lower=record.chol_lower,
            chol_prior_index=record.chol_prior_index,
        )


class RecoveryManager:
    """Rebuilds serving state from a :class:`~repro.store.ModelStore`."""

    def __init__(self, store: ModelStore):
        self.store = store

    def recover(
        self,
        registry: Optional[ModelRegistry] = None,
        quarantine_corrupt: bool = True,
    ) -> RecoveryReport:
        """Scan the store and restore every valid record to a registry.

        ``registry`` defaults to a fresh :class:`ModelRegistry` with
        default configuration; pass one explicitly to control
        ``max_versions`` / ``validate`` / ``serve_last_good`` (use the
        same values as the crashed process for a bitwise-identical
        rebuild) or to attach the store for continued write-ahead
        publishing.  Corrupt records are quarantined when
        ``quarantine_corrupt`` (the default), otherwise left in place
        but still excluded from the registry.
        """
        if registry is None:
            registry = ModelRegistry()
        scan = self.store.scan(quarantine_corrupt=quarantine_corrupt)
        restored = []
        rejected = []
        quarantined = list(scan.quarantined)
        latest: Dict[str, ModelRecord] = {}
        for record in scan.records:
            model = FittedModel(record.basis(), record.coefficients)
            try:
                registry.restore(
                    record.name,
                    record.version,
                    record.key,
                    record.published_at,
                    model,
                )
            except PublishRejectedError as exc:
                rejected.append((record.name, record.version, str(exc)))
                if quarantine_corrupt:
                    path = self.store.records_dir / self.store.record_filename(
                        record.name, record.version
                    )
                    if path.exists():
                        quarantined.append(self.store.quarantine(path, str(exc)))
                continue
            restored.append((record.name, record.version))
            latest[record.name] = record
            metrics.increment("store.recovered_records")
        return RecoveryReport(
            registry=registry,
            restored=tuple(restored),
            rejected=tuple(rejected),
            quarantined=tuple(quarantined),
            missing=scan.missing,
            unjournaled=tuple(
                (record.name, record.version) for record in scan.unjournaled
            ),
            torn_journal_lines=scan.torn_journal_lines,
            latest=MappingProxyType(latest),
            generation=scan.generation,
            checkpoint_offset=scan.checkpoint_offset,
            compaction_quarantined=scan.compaction_quarantined,
        )

    def recover_at(
        self,
        offset: int,
        registry: Optional[ModelRegistry] = None,
    ) -> RecoveryReport:
        """Point-in-time recovery to global journal offset ``offset``.

        Rebuilds exactly the registry state after the first ``offset``
        journal entries: the live generation's snapshot manifest (the
        state at the checkpoint offset) plus the appends up to
        ``offset``.  Valid offsets span ``[checkpoint_offset,
        end_offset]`` -- earlier prefixes were folded away by compaction
        and raise :class:`ValueError`, as does an offset beyond the
        journal end.

        Unlike :meth:`recover`, PITR is journal-driven and read-only:
        unjournaled records cannot be placed in the prefix order and are
        excluded, nothing is quarantined (corrupt records are reported in
        ``rejected``), and records published after ``offset`` are simply
        not replayed.
        """
        if registry is None:
            registry = ModelRegistry()
        view = self.store.journal_view()
        if not view.checkpoint_offset <= offset <= view.end_offset:
            raise ValueError(
                f"offset {offset} is outside the recoverable range "
                f"[{view.checkpoint_offset}, {view.end_offset}]: entries "
                f"before the checkpoint were compacted away"
            )
        metrics.increment("store.pitr.recoveries")
        replay = list(view.snapshot) + list(
            view.entries[: offset - view.checkpoint_offset]
        )
        restored = []
        rejected = []
        missing = []
        latest: Dict[str, ModelRecord] = {}
        for entry in replay:
            path = self.store.records_dir / entry.filename
            try:
                record = self.store.read(path)
            except CorruptRecordError as exc:
                if path.exists():
                    rejected.append((entry.name, entry.version, str(exc)))
                else:
                    missing.append(entry)
                continue
            model = FittedModel(record.basis(), record.coefficients)
            try:
                registry.restore(
                    record.name,
                    record.version,
                    record.key,
                    record.published_at,
                    model,
                )
            except PublishRejectedError as exc:
                rejected.append((record.name, record.version, str(exc)))
                continue
            restored.append((record.name, record.version))
            latest[record.name] = record
            metrics.increment("store.recovered_records")
        return RecoveryReport(
            registry=registry,
            restored=tuple(restored),
            rejected=tuple(rejected),
            quarantined=(),
            missing=tuple(missing),
            unjournaled=(),
            torn_journal_lines=view.torn_lines,
            latest=MappingProxyType(latest),
            generation=view.generation,
            checkpoint_offset=view.checkpoint_offset,
            compaction_quarantined=view.compaction_quarantined,
        )
