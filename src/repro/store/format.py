"""Checksummed binary record format for persisted model snapshots.

A published model is a costly artifact -- the MAP fit over the early-stage
prior spends real simulator hours per late-stage sample -- so the on-disk
encoding must make corruption *detectable*, not merely unlikely.  Every
record is a single self-describing blob::

    offset 0   magic      b"RBMF"
    offset 4   crc32      (uint32 LE) of every byte from offset 8 onward
    offset 8   version    (uint32 LE) format version, currently 1
    offset 12  header_len (uint32 LE) byte length of the JSON header
    offset 16  header     canonical JSON (sorted keys, no whitespace)
    ...        arrays     raw C-order buffers, concatenated in header order

The CRC covers the format version, the header, and every array byte, so a
single flipped byte anywhere in the record is caught: a flip inside the
covered region changes the computed CRC, a flip in the stored CRC breaks
the comparison, and a flip in the magic fails the signature check.  The
property suite (``tests/test_store_properties.py``) asserts exactly this
over every byte offset.

Arrays round-trip *bitwise*: dtype (including byte order), shape, and the
raw buffer are preserved, so NaN payloads, negative zeros, and subnormals
come back identical.  Scalar floats (``eta``, ``published_at``) ride in
the JSON header -- ``json`` emits the shortest round-tripping repr, so
they too are exact.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CorruptRecordError",
    "FORMAT_VERSION",
    "MAGIC",
    "ModelRecord",
    "decode_record",
    "encode_record",
    "record_crc",
]

MAGIC = b"RBMF"
FORMAT_VERSION = 1

#: Fixed-size prefix: magic, crc32, format version, header length.
_PREFIX = struct.Struct("<4sIII")


class CorruptRecordError(Exception):
    """A persisted record failed its structural or checksum validation."""


def _frozen_array(value: Optional[np.ndarray]) -> Optional[np.ndarray]:
    if value is None:
        return None
    out = np.ascontiguousarray(value)
    if out is value:
        out = value.copy()
    out.flags.writeable = False
    return out


@dataclass(frozen=True)
class ModelRecord:
    """One persisted model snapshot -- everything recovery needs to serve.

    The required fields mirror :class:`repro.serving.ModelVersion` (name,
    version, key, model, timestamp) plus the basis *structure* -- the digest
    alone identifies a basis but cannot rebuild one, and a recovered
    registry must evaluate predictions, not just compare keys.  The
    optional fields capture the fitter context: the prior configuration and
    hyper-parameter that produced the coefficients, and -- for sequential
    (streaming) fits -- the accumulated samples and the dual Cholesky
    factor, so :class:`repro.bmf.SequentialBmf` can resume border-updating
    exactly where the dead process stopped.
    """

    name: str
    version: int
    key: str
    published_at: float
    basis_digest: str
    basis_num_vars: int
    basis_indices: Tuple[Tuple[Tuple[int, int], ...], ...]
    coefficients: np.ndarray
    prior_name: Optional[str] = None
    prior_mean: Optional[np.ndarray] = None
    prior_scale: Optional[np.ndarray] = None
    eta: Optional[float] = None
    chol_lower: Optional[np.ndarray] = None
    chol_prior_index: Optional[int] = None
    train_x: Optional[np.ndarray] = None
    train_f: Optional[np.ndarray] = None

    #: Field names serialized as raw array buffers (order = payload order).
    ARRAY_FIELDS = (
        "coefficients",
        "prior_mean",
        "prior_scale",
        "chol_lower",
        "train_x",
        "train_f",
    )

    def __post_init__(self):
        if not self.name:
            raise ValueError("record name must be non-empty")
        if self.version < 1:
            raise ValueError(f"version must be >= 1, got {self.version}")
        if self.coefficients is None:
            raise ValueError("record must carry a coefficient array")
        object.__setattr__(
            self,
            "basis_indices",
            tuple(
                tuple((int(v), int(d)) for v, d in index)
                for index in self.basis_indices
            ),
        )
        for field_name in self.ARRAY_FIELDS:
            object.__setattr__(
                self, field_name, _frozen_array(getattr(self, field_name))
            )

    def basis(self):
        """Rebuild the :class:`~repro.basis.OrthonormalBasis` structure."""
        from ..basis import OrthonormalBasis

        return OrthonormalBasis(self.basis_num_vars, list(self.basis_indices))

    def prior(self):
        """Rebuild the prior config, or ``None`` when none was recorded."""
        from ..bmf.priors import GaussianCoefficientPrior

        if self.prior_mean is None or self.prior_scale is None:
            return None
        return GaussianCoefficientPrior(
            self.prior_mean, self.prior_scale, self.prior_name or "custom"
        )

    def equals_bitwise(self, other: "ModelRecord") -> bool:
        """Field-by-field bitwise equality (array buffers compared as bytes)."""
        if not isinstance(other, ModelRecord):
            return False
        for field in fields(self):
            mine = getattr(self, field.name)
            theirs = getattr(other, field.name)
            if isinstance(mine, np.ndarray) or isinstance(theirs, np.ndarray):
                if mine is None or theirs is None:
                    return False
                if mine.dtype != theirs.dtype or mine.shape != theirs.shape:
                    return False
                if mine.tobytes() != theirs.tobytes():
                    return False
            elif mine != theirs:
                return False
        return True


def _array_descriptors(
    record: ModelRecord,
) -> Tuple[List[Dict[str, Any]], List[bytes]]:
    descriptors: List[Dict[str, Any]] = []
    buffers: List[bytes] = []
    offset = 0
    for field_name in ModelRecord.ARRAY_FIELDS:
        value = getattr(record, field_name)
        if value is None:
            continue
        blob = value.tobytes(order="C")
        descriptors.append(
            {
                "name": field_name,
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "offset": offset,
                "nbytes": len(blob),
            }
        )
        buffers.append(blob)
        offset += len(blob)
    return descriptors, buffers


def encode_record(record: ModelRecord) -> bytes:
    """Serialize a record into one checksummed, self-describing blob."""
    if not isinstance(record, ModelRecord):
        raise TypeError(f"expected ModelRecord, got {type(record).__name__}")
    descriptors, buffers = _array_descriptors(record)
    header = {
        "record": {
            "name": record.name,
            "version": record.version,
            "key": record.key,
            "published_at": record.published_at,
            "basis_digest": record.basis_digest,
            "basis_num_vars": record.basis_num_vars,
            "basis_indices": [
                [[v, d] for v, d in index] for index in record.basis_indices
            ],
            "prior_name": record.prior_name,
            "eta": record.eta,
            "chol_prior_index": record.chol_prior_index,
        },
        "arrays": descriptors,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    body = b"".join(
        [
            struct.pack("<II", FORMAT_VERSION, len(header_bytes)),
            header_bytes,
            *buffers,
        ]
    )
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return MAGIC + struct.pack("<I", crc) + body


def record_crc(blob: bytes) -> int:
    """The stored CRC of an encoded record (no validation performed)."""
    if len(blob) < _PREFIX.size:
        raise CorruptRecordError(
            f"record too short for its prefix ({len(blob)} bytes)"
        )
    return struct.unpack_from("<I", blob, 4)[0]


def decode_record(blob: bytes) -> ModelRecord:
    """Parse and validate an encoded record.

    Raises :class:`CorruptRecordError` for *any* structural damage: wrong
    magic, truncation, trailing garbage, checksum mismatch, or a header
    that does not describe the payload it sits on.
    """
    if len(blob) < _PREFIX.size:
        raise CorruptRecordError(
            f"record too short for its prefix ({len(blob)} bytes)"
        )
    magic, stored_crc, version, header_len = _PREFIX.unpack_from(blob, 0)
    if magic != MAGIC:
        raise CorruptRecordError(f"bad magic {magic!r} (expected {MAGIC!r})")
    actual_crc = zlib.crc32(blob[8:]) & 0xFFFFFFFF
    if actual_crc != stored_crc:
        raise CorruptRecordError(
            f"checksum mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    if version != FORMAT_VERSION:
        raise CorruptRecordError(f"unsupported format version {version}")
    header_start = _PREFIX.size
    payload_start = header_start + header_len
    if payload_start > len(blob):
        raise CorruptRecordError("header extends past the end of the record")
    try:
        header = json.loads(blob[header_start:payload_start].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptRecordError(f"unparseable header: {exc}") from exc
    if not isinstance(header, dict) or "record" not in header:
        raise CorruptRecordError("header is not a record envelope")

    payload = blob[payload_start:]
    arrays: Dict[str, np.ndarray] = {}
    expected_end = 0
    for descriptor in header.get("arrays", ()):
        try:
            name = descriptor["name"]
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(int(s) for s in descriptor["shape"])
            offset = int(descriptor["offset"])
            nbytes = int(descriptor["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptRecordError(f"malformed array descriptor: {exc}") from exc
        if name not in ModelRecord.ARRAY_FIELDS:
            raise CorruptRecordError(f"unknown array field {name!r}")
        size = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if size != nbytes or offset != expected_end:
            raise CorruptRecordError(
                f"array {name!r} descriptor inconsistent with payload layout"
            )
        if offset + nbytes > len(payload):
            raise CorruptRecordError(
                f"array {name!r} extends past the end of the payload"
            )
        data = np.frombuffer(
            payload, dtype=dtype, count=size // dtype.itemsize, offset=offset
        ).reshape(shape)
        arrays[name] = data
        expected_end = offset + nbytes
    if expected_end != len(payload):
        raise CorruptRecordError(
            f"{len(payload) - expected_end} trailing payload bytes not "
            "described by the header"
        )

    meta = header["record"]
    try:
        return ModelRecord(
            name=meta["name"],
            version=int(meta["version"]),
            key=meta["key"],
            published_at=float(meta["published_at"]),
            basis_digest=meta["basis_digest"],
            basis_num_vars=int(meta["basis_num_vars"]),
            basis_indices=tuple(
                tuple((int(v), int(d)) for v, d in index)
                for index in meta["basis_indices"]
            ),
            coefficients=arrays.get("coefficients"),
            prior_name=meta.get("prior_name"),
            prior_mean=arrays.get("prior_mean"),
            prior_scale=arrays.get("prior_scale"),
            eta=None if meta.get("eta") is None else float(meta["eta"]),
            chol_lower=arrays.get("chol_lower"),
            chol_prior_index=(
                None
                if meta.get("chol_prior_index") is None
                else int(meta["chol_prior_index"])
            ),
            train_x=arrays.get("train_x"),
            train_f=arrays.get("train_f"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptRecordError(f"invalid record contents: {exc}") from exc
