"""Generational snapshot compaction for the crash-safe model store.

An append-only store hoards every superseded version, so recovery (and a
journal follower's bootstrap) replays history that no longer matters.
:func:`compact` folds the journal prefix into a snapshot:

1. **select** -- group every known record (journaled appends, a previous
   generation's snapshot manifest, and valid-but-unjournaled strays) by
   name and keep the newest ``history_window + 1`` *valid* versions of
   each: a survivor that fails its CRC is quarantine-copied (its
   ``.reason`` sidecar names the generation it came from) and the next
   older version is promoted in its place, exactly what uncompacted
   recovery would have restored;
2. **copy** -- write the survivor files into a fresh generation directory
   (``root/gen-<n>/records``) and fsync them;
3. **checkpoint** -- write the new generation's ``journal.log`` whose
   first line is a ``c1`` checkpoint: the global offset the snapshot
   stands in for (``base``), the survivor manifest, and the quarantined
   list; fsync it;
4. **swing** -- under the store's append lock, absorb any appends that
   raced phases 1-3, re-plan the snapshot, then atomically swing the
   ``CURRENT`` pointer (write-temp -> fsync -> ``os.replace`` -> dir
   fsync).  The ``store.compact.swing`` failpoint fires just before the
   rename: a crash there leaves the *old* generation fully live and the
   new directory as ignorable garbage;
5. **retire** -- outside the lock, salvage the old generation's
   quarantine into the new one and delete the old payload.  The
   ``store.compact.retire`` failpoint fires first: a crash there leaves
   the *new* generation fully live with the old directory ignored on
   disk (the next compaction sweeps stale generations).

Because the swing shares the append lock with :meth:`ModelStore.append`
(which re-resolves the live generation inside its critical section), the
store keeps accepting appends throughout: they land in whichever
generation owns the lock, never in a retired one.  Journal offsets are
global -- the checkpoint's ``base`` continues the retired prefix's count
-- so followers and point-in-time recovery survive the boundary.

Metrics: ``store.compaction.runs`` / ``kept`` / ``dropped`` /
``quarantined`` / ``retired`` counters and the ``store.compaction``
timer, all declared in :mod:`repro.runtime.catalog`.
"""

from __future__ import annotations

import os
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..faults import SimulatedCrash, failpoint
from ..runtime.metrics import metrics
from .format import CorruptRecordError
from .store import (
    GENERATION_PREFIX,
    JournalCheckpoint,
    JournalEntry,
    ModelStore,
    generation_dir_name,
)

__all__ = ["CompactionReport", "compact", "stale_generations"]

#: Fires just before the ``CURRENT`` pointer rename; a crash here aborts
#: the compaction with the old generation still fully live.
_FP_SWING = failpoint("store.compact.swing")
#: Fires just before the old generation is deleted; a crash here leaves
#: the new generation live and the old directory as ignored garbage.
_FP_RETIRE = failpoint("store.compact.retire")


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one :func:`compact` run."""

    #: Live generation id after the swing.
    generation: int
    #: Generation id that was retired (or left stale on a retire crash).
    previous_generation: int
    #: Global journal offset the new snapshot stands in for.
    checkpoint_offset: int
    #: ``(name, version)`` of every record carried into the new generation.
    kept: Tuple[Tuple[str, int], ...]
    #: ``(name, version)`` dropped by the history window.
    dropped: Tuple[Tuple[str, int], ...]
    #: Quarantine paths (new generation) of records that failed their CRC.
    quarantined: Tuple[Path, ...]
    #: ``(name, version)`` journaled but absent from disk; resolved out of
    #: the new generation's audit trail (reported here, nowhere else).
    missing: Tuple[Tuple[str, int], ...]
    #: Stale generation directories deleted during retirement.
    retired: Tuple[Path, ...]


@dataclass
class _Candidate:
    """One record known to the pre-compaction generation."""

    name: str
    version: int
    filename: str
    record_crc: Optional[int]  # None until computed from the file bytes
    journaled: bool


def stale_generations(store: ModelStore) -> List[Path]:
    """Generation directories on disk that are not the live one.

    Crashed compactions leave these behind (a swing crash orphans the new
    directory; a retire crash orphans the old one); they are ignored by
    every read path and swept by the next successful :func:`compact`.
    Generation 0 is the store root itself: its leftover payload
    (``records/``, ``quarantine/``, ``journal.log``) counts as stale once
    a later generation is live, and is reported as the root path.
    """
    live = store.generation_dir
    out = []
    if live != store.root and any(
        (store.root / name).exists()
        for name in ("records", "quarantine", "journal.log")
    ):
        out.append(store.root)
    for path in sorted(store.root.iterdir()):
        if (
            path.is_dir()
            and path.name.startswith(GENERATION_PREFIX)
            and path != live
        ):
            out.append(path)
    return out


def _next_generation_id(store: ModelStore) -> int:
    """A generation id strictly above everything on disk (crash-safe)."""
    highest = store.generation
    for path in store.root.iterdir():
        if path.is_dir() and path.name.startswith(GENERATION_PREFIX):
            try:
                highest = max(highest, int(path.name[len(GENERATION_PREFIX) :]))
            except ValueError:
                continue
    return highest + 1


def _collect_candidates(store: ModelStore) -> Dict[str, List[_Candidate]]:
    """Every record the live generation knows, grouped by name.

    Journaled records (snapshot manifest + appends) come with their CRC;
    valid record files the journal does not mention (a crash between the
    rename commit point and the journal append) are still candidates --
    compaction re-journals them, repairing the audit trail.
    """
    view = store.journal_view()
    by_file: Dict[str, _Candidate] = {}
    for entry in view.snapshot + view.entries:
        by_file[entry.filename] = _Candidate(
            name=entry.name,
            version=entry.version,
            filename=entry.filename,
            record_crc=entry.record_crc,
            journaled=True,
        )
    for path in store.record_paths():
        if path.name in by_file:
            continue
        try:
            record = store.read(path)
        except SimulatedCrash:
            raise
        except (CorruptRecordError, OSError):
            # Unjournaled *and* unreadable: nobody can attribute it; the
            # scan/recovery path quarantines it from the live generation.
            continue
        by_file[path.name] = _Candidate(
            name=record.name,
            version=record.version,
            filename=path.name,
            record_crc=None,
            journaled=False,
        )
    grouped: Dict[str, List[_Candidate]] = {}
    for candidate in by_file.values():
        grouped.setdefault(candidate.name, []).append(candidate)
    for candidates in grouped.values():
        candidates.sort(key=lambda c: c.version)
    return grouped


class _SurvivorSet:
    """Plans and materializes the survivor set in the new generation.

    ``reconcile`` is re-runnable: phase 2 merges late appends into the
    candidate map and calls it again under the append lock, and it
    converges because a failed copy permanently marks its file bad (the
    next plan promotes an older version in its place).
    """

    def __init__(
        self,
        store: ModelStore,
        history_window: int,
        old_records: Path,
        new_records: Path,
        new_quarantine: Path,
        old_generation: int,
    ):
        self.store = store
        self.history_window = history_window
        self.old_records = old_records
        self.new_records = new_records
        self.new_quarantine = new_quarantine
        self.old_generation = old_generation
        self.copied: Dict[str, _Candidate] = {}
        self.bad_files: Set[str] = set()
        self.dropped: List[Tuple[str, int]] = []
        self.quarantined_paths: List[Path] = []
        self.quarantined_meta: List[Tuple[str, int, str]] = []
        self.missing: List[Tuple[str, int]] = []

    def _plan(self, grouped: Dict[str, List[_Candidate]]) -> List[_Candidate]:
        keep: List[_Candidate] = []
        self.dropped = []
        retain = self.history_window + 1
        for name in sorted(grouped):
            good = [c for c in grouped[name] if c.filename not in self.bad_files]
            keep.extend(good[-retain:])
            self.dropped.extend((c.name, c.version) for c in good[:-retain])
        return keep

    def reconcile(self, grouped: Dict[str, List[_Candidate]]) -> None:
        while True:
            keep = self._plan(grouped)
            pending = [c for c in keep if c.filename not in self.copied]
            if not pending:
                # Drop copies a newer (late-appended) version pushed out.
                keep_files = {c.filename for c in keep}
                for filename in list(self.copied):
                    if filename not in keep_files:
                        (self.new_records / filename).unlink(missing_ok=True)
                        del self.copied[filename]
                return
            for candidate in pending:
                self._copy(candidate)

    def _copy(self, candidate: _Candidate) -> None:
        source = self.old_records / candidate.filename
        try:
            blob = source.read_bytes()
        except OSError:
            self.bad_files.add(candidate.filename)
            self.missing.append((candidate.name, candidate.version))
            return
        reason: Optional[str] = None
        try:
            record = self.store.read(source)
        except SimulatedCrash:
            raise
        except CorruptRecordError as exc:
            reason = str(exc)
        else:
            if (record.name, record.version) != (candidate.name, candidate.version):
                reason = (
                    f"journal names {candidate.name!r} v{candidate.version} but "
                    f"the file decodes as {record.name!r} v{record.version}"
                )
        if reason is not None:
            self.bad_files.add(candidate.filename)
            target = self.new_quarantine / candidate.filename
            target.write_bytes(blob)
            target.with_suffix(target.suffix + ".reason").write_text(
                f"{reason}\ngeneration: {self.old_generation}\n",
                encoding="utf-8",
            )
            metrics.increment("store.corrupt_quarantined")
            self.quarantined_paths.append(target)
            self.quarantined_meta.append(
                (candidate.name, candidate.version, candidate.filename)
            )
            return
        destination = self.new_records / candidate.filename
        with open(destination, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.store.use_fsync:
                os.fsync(handle.fileno())
        candidate.record_crc = zlib.crc32(blob[8:]) & 0xFFFFFFFF
        self.copied[candidate.filename] = candidate

    def snapshot(self) -> Tuple[JournalEntry, ...]:
        return tuple(
            JournalEntry(
                name=c.name,
                version=c.version,
                filename=c.filename,
                record_crc=c.record_crc,
            )
            for c in sorted(self.copied.values(), key=lambda c: (c.name, c.version))
        )


def _fsync_path(path: Path, use_fsync: bool) -> None:
    if not use_fsync:
        return
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def compact(
    store: ModelStore, history_window: int = 0, retire: bool = True
) -> CompactionReport:
    """Fold the store's journal prefix into a fresh generation.

    ``history_window`` is how many *superseded* versions to keep per name
    on top of the newest one (0 keeps only the latest).  ``retire=False``
    leaves the old generation directory on disk (it is ignored by every
    read path); the next compaction sweeps it either way.

    Lets :class:`~repro.faults.SimulatedCrash` propagate untouched after
    crash-consistent on-disk effects: a crash at ``store.compact.swing``
    leaves the old generation fully live (the new directory is ignorable
    garbage), a crash at ``store.compact.retire`` leaves the new
    generation fully live (the old directory is ignored) -- never a
    hybrid.
    """
    if history_window < 0:
        raise ValueError(f"history_window must be >= 0, got {history_window}")
    with metrics.timer("store.compaction"):
        report = _compact(store, history_window, retire)
    metrics.increment("store.compaction.runs")
    metrics.increment("store.compaction.kept", len(report.kept))
    metrics.increment("store.compaction.dropped", len(report.dropped))
    if report.quarantined:
        metrics.increment("store.compaction.quarantined", len(report.quarantined))
    if report.retired:
        metrics.increment("store.compaction.retired", len(report.retired))
    return report


def _compact(store: ModelStore, history_window: int, retire: bool) -> CompactionReport:
    old_generation = store.generation
    old_dir = store.generation_dir
    old_records = store.records_dir
    view = store.journal_view()

    new_generation = _next_generation_id(store)
    new_dir = store.root / generation_dir_name(new_generation)
    new_records = new_dir / "records"
    new_quarantine = new_dir / "quarantine"
    new_records.mkdir(parents=True, exist_ok=True)
    new_quarantine.mkdir(parents=True, exist_ok=True)

    survivors = _SurvivorSet(
        store, history_window, old_records, new_records, new_quarantine,
        old_generation,
    )

    # ----- Phase 1 (lock-free): bulk-copy the survivor set --------------
    grouped = _collect_candidates(store)
    survivors.reconcile(grouped)

    # ----- Phase 2 (under the append lock): catch up + checkpoint + swing
    with store._lock:
        if store.generation != old_generation:
            raise RuntimeError(
                f"concurrent compaction detected: generation moved from "
                f"{old_generation} to {store.generation} mid-run"
            )
        _, entries_now, _ = store._parse_journal(count_torn=False)
        known = {
            c.filename for cs in grouped.values() for c in cs
        }
        for entry in entries_now[len(view.entries) :]:
            if entry.filename in known:
                continue
            candidate = _Candidate(
                name=entry.name,
                version=entry.version,
                filename=entry.filename,
                record_crc=entry.record_crc,
                journaled=True,
            )
            grouped.setdefault(entry.name, []).append(candidate)
            grouped[entry.name].sort(key=lambda c: c.version)
        survivors.reconcile(grouped)

        base = view.checkpoint_offset + len(entries_now)
        checkpoint = JournalCheckpoint(
            generation=new_generation,
            base=base,
            snapshot=survivors.snapshot(),
            quarantined=tuple(sorted(survivors.quarantined_meta)),
        )
        new_journal = new_dir / "journal.log"
        with open(new_journal, "wb") as handle:
            handle.write(ModelStore.encode_checkpoint(checkpoint))
            handle.flush()
            if store.use_fsync:
                os.fsync(handle.fileno())
        _fsync_path(new_records, store.use_fsync)
        _fsync_path(new_dir, store.use_fsync)

        _FP_SWING.hit()  # crash here: CURRENT still names the old generation

        pointer = store.current_pointer
        tmp_pointer = pointer.with_suffix(".tmp")
        tmp_pointer.write_text(
            generation_dir_name(new_generation) + "\n", encoding="utf-8"
        )
        if store.use_fsync:
            fd = os.open(tmp_pointer, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        os.replace(tmp_pointer, pointer)  # the swing: old XOR new, never both
        _fsync_path(store.root, store.use_fsync)

    # ----- Phase 3 (lock-free): retire the old generation ---------------
    retired: List[Path] = []
    if retire:
        _FP_RETIRE.hit()  # crash here: the new generation is already live
        retired = _retire_stale(store, new_quarantine)
    return CompactionReport(
        generation=new_generation,
        previous_generation=old_generation,
        checkpoint_offset=base,
        kept=tuple(
            (c.name, c.version)
            for c in sorted(
                survivors.copied.values(), key=lambda c: (c.name, c.version)
            )
        ),
        dropped=tuple(sorted(survivors.dropped)),
        quarantined=tuple(survivors.quarantined_paths),
        missing=tuple(sorted(survivors.missing)),
        retired=tuple(retired),
    )


def _retire_stale(store: ModelStore, new_quarantine: Path) -> List[Path]:
    """Delete every non-live generation, salvaging quarantine evidence."""
    retired: List[Path] = []
    for stale in stale_generations(store):
        _salvage_quarantine(stale / "quarantine", new_quarantine)
        if stale == store.root:
            # Generation 0 is the root itself: retire only its payload,
            # the root still hosts CURRENT and the generation dirs.
            shutil.rmtree(store.root / "records", ignore_errors=True)
            shutil.rmtree(store.root / "quarantine", ignore_errors=True)
            (store.root / "journal.log").unlink(missing_ok=True)
        else:
            shutil.rmtree(stale, ignore_errors=True)
        retired.append(stale)
    return retired


def _salvage_quarantine(source: Path, destination: Path) -> None:
    """Move quarantined records (+ sidecars) into the live generation."""
    if not source.is_dir() or source == destination:
        return
    destination.mkdir(parents=True, exist_ok=True)
    for path in sorted(source.iterdir()):
        target = destination / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = destination / f"{path.name}.{suffix}"
        os.replace(path, target)
