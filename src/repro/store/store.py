"""Crash-safe on-disk model store: atomic records plus an append-only journal.

Layout under the store root::

    root/
      records/     one ``.rbmf`` blob per published version (atomic rename)
      quarantine/  records that failed validation, moved aside with a reason
      journal.log  append-only publish log, one checksummed line per record

Durability protocol (the classic write-temp -> fsync -> rename dance):

1. the encoded record is written to ``records/<file>.tmp``;
2. the temp file is flushed and ``fsync``'d -- its bytes are durable;
3. ``os.replace`` renames it over the final name -- the *commit point*:
   a record is published iff the final name exists;
4. the records directory is ``fsync``'d so the rename itself is durable;
5. a journal line is appended (and ``fsync``'d) describing the record.

A crash before step 3 leaves at most an invisible ``.tmp`` file; a crash
after step 3 but before step 5 leaves a valid record the journal does not
know about (recovery still admits it -- rename is the commit point, the
journal is an audit log).  The dangerous window is a *lost fsync* (step 2
skipped by a dying kernel): the rename can survive while the data pages
do not, leaving a **torn** record.  The ``store.fsync`` failpoint armed
with :class:`~repro.faults.SimulatedCrash` models exactly that worst
case, deterministically: the store truncates the half-written file,
renames it into place, and re-raises the crash -- recovery must then
catch the damage by CRC and quarantine the record.

Failpoints: ``store.write`` (mid-payload; a crash here abandons a
half-written temp file), ``store.fsync`` (before the data fsync),
``store.load`` (per record read).  All activity is reported through
integer ``store.*`` counters in :mod:`repro.runtime.metrics`, so chaos
signatures over them stay a pure function of the seed.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from ..locks import named_lock
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..faults import SimulatedCrash, failpoint
from ..runtime.metrics import metrics
from .format import CorruptRecordError, ModelRecord, decode_record, encode_record

__all__ = [
    "JournalEntry",
    "ModelStore",
    "StoreWriteError",
    "StoreScan",
]

#: Fires mid-payload, after the first half of the record bytes are written;
#: a :class:`~repro.faults.SimulatedCrash` here abandons the temp file.
_FP_WRITE = failpoint("store.write")
#: Fires just before the temp file's data fsync; a crash here is modeled as
#: a lost fsync -- the rename lands but the tail pages do not (torn record).
_FP_FSYNC = failpoint("store.fsync")
#: Fires at the top of every record read; an injected error marks the
#: record unreadable (recovery quarantines it).
_FP_LOAD = failpoint("store.load")

_JOURNAL_LINE = re.compile(r"^v1 (?P<crc>[0-9a-f]{8}) (?P<payload>\{.*\})$")


class StoreWriteError(RuntimeError):
    """A record could not be made durable (no partial state left behind)."""


@dataclass(frozen=True)
class JournalEntry:
    """One checksummed publish line from the append-only journal."""

    name: str
    version: int
    filename: str
    record_crc: int


@dataclass(frozen=True)
class StoreScan:
    """Outcome of one full store scan (see :meth:`ModelStore.scan`)."""

    #: Valid records, sorted by ``(name, version)``.
    records: Tuple[ModelRecord, ...]
    #: Final resting paths of records quarantined during this scan.
    quarantined: Tuple[Path, ...]
    #: Journal entries whose record file is missing from ``records/``.
    missing: Tuple[JournalEntry, ...]
    #: Valid records the journal does not mention (crash between the
    #: rename commit point and the journal append).
    unjournaled: Tuple[ModelRecord, ...]
    #: Trailing journal lines dropped as torn (bad per-line CRC / truncated).
    torn_journal_lines: int


def _slug(name: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name) or "model"
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=4).hexdigest()
    return f"{safe[:48]}-{digest}"


class ModelStore:
    """Directory-backed store of published model records.

    Parameters
    ----------
    root:
        Store directory (created, with subdirectories, when missing).
    use_fsync:
        Issue real ``os.fsync`` calls (temp file, directory, journal).
        Disable only in tests that measure pure codec cost; the crash
        guarantees obviously require it on.

    Thread safety: appends and journal writes are serialized under one
    lock; reads are lock-free (records are immutable once renamed in).
    """

    RECORD_SUFFIX = ".rbmf"

    def __init__(self, root, use_fsync: bool = True):
        self.root = Path(root)
        self.records_dir = self.root / "records"
        self.quarantine_dir = self.root / "quarantine"
        self.journal_path = self.root / "journal.log"
        self.use_fsync = bool(use_fsync)
        self._lock = named_lock("store.append")
        # Fingerprint of the torn journal tail last charged to the
        # ``store.journal_torn`` counter; re-parsing the *same* damage
        # (repeated scans, follower tailing) must not re-count it.
        self._torn_counted: Optional[Tuple[int, bytes]] = None
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_filename(self, name: str, version: int) -> str:
        """Deterministic record filename for ``(name, version)``."""
        return f"{_slug(name)}-v{int(version):08d}{self.RECORD_SUFFIX}"

    def append(self, record: ModelRecord) -> Path:
        """Durably persist ``record``; returns the committed path.

        Raises :class:`StoreWriteError` when the record could not be made
        durable (temp state cleaned up, nothing visible to recovery) and
        lets :class:`~repro.faults.SimulatedCrash` propagate untouched
        after performing crash-consistent (possibly torn) on-disk effects.
        """
        blob = encode_record(record)
        final = self.records_dir / self.record_filename(record.name, record.version)
        tmp = final.with_suffix(final.suffix + ".tmp")
        metrics.increment("store.writes")
        # Appends are deliberately serialized end-to-end: the write-ahead
        # protocol requires record bytes to hit disk before the journal
        # line, in version order, and readers never take this lock.  The
        # fsync-under-lock cost is the durability contract, not an
        # accident, so the REP011 findings below are audited suppressions.
        with self._lock:
            try:
                self._write_atomic(tmp, final, blob)  # repro: noqa[REP011] -- WAL ordering requires fsync under the append lock
            except SimulatedCrash:
                raise
            except Exception as exc:
                metrics.increment("store.write_failures")
                tmp.unlink(missing_ok=True)
                raise StoreWriteError(
                    f"could not persist {record.name!r} v{record.version}: {exc}"
                ) from exc
            self._journal_append(record, final.name, blob)  # repro: noqa[REP011] -- journal append must stay inside the same critical section
        return final

    def _write_atomic(self, tmp: Path, final: Path, blob: bytes) -> None:
        half = len(blob) // 2
        crash: Optional[SimulatedCrash] = None
        with open(tmp, "wb") as handle:
            handle.write(blob[:half])
            _FP_WRITE.hit()
            handle.write(blob[half:])
            handle.flush()
            try:
                _FP_FSYNC.hit()
            except SimulatedCrash as exc:
                # Lost-fsync crash: data pages past the first half never
                # reach disk, but the rename below still can.  Truncate
                # deterministically so recovery faces a torn record.
                crash = exc
                handle.truncate(half)
                handle.flush()
            else:
                if self.use_fsync:
                    os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._fsync_dir(self.records_dir)
        if crash is not None:
            metrics.increment("store.torn_writes")
            raise crash

    def _fsync_dir(self, directory: Path) -> None:
        if not self.use_fsync:
            return
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _journal_append(self, record: ModelRecord, filename: str, blob: bytes) -> None:
        payload = json.dumps(
            {
                "name": record.name,
                "version": record.version,
                "file": filename,
                "crc": zlib.crc32(blob[8:]) & 0xFFFFFFFF,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        line = f"v1 {zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x} {payload}\n"
        try:
            with open(self.journal_path, "ab") as handle:
                handle.write(line.encode("utf-8"))
                handle.flush()
                if self.use_fsync:
                    os.fsync(handle.fileno())
        except OSError:
            # The record itself is already committed (rename happened);
            # a failed journal append only degrades the audit trail.
            metrics.increment("store.journal_write_failures")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def record_paths(self) -> List[Path]:
        """Committed record files, sorted by filename (temp files excluded)."""
        return sorted(
            path
            for path in self.records_dir.iterdir()
            if path.suffix == self.RECORD_SUFFIX
        )

    def read(self, path) -> ModelRecord:
        """Read and validate one record file.

        Raises :class:`~repro.store.CorruptRecordError` for unreadable or
        damaged records (including injected ``store.load`` faults, which
        model unreadable sectors); :class:`~repro.faults.SimulatedCrash`
        propagates untouched.
        """
        path = Path(path)
        metrics.increment("store.loads")
        try:
            _FP_LOAD.hit()
        except SimulatedCrash:
            raise
        except Exception as exc:
            metrics.increment("store.load_failures")
            raise CorruptRecordError(f"{path.name}: unreadable: {exc}") from exc
        try:
            blob = path.read_bytes()
        except OSError as exc:
            metrics.increment("store.load_failures")
            raise CorruptRecordError(f"{path.name}: unreadable: {exc}") from exc
        try:
            return decode_record(blob)
        except CorruptRecordError:
            metrics.increment("store.load_failures")
            raise

    def journal_entries(self) -> Tuple[List[JournalEntry], int]:
        """Parse the journal; returns ``(entries, torn_trailing_lines)``.

        Lines are validated front to back; the first damaged line (bad
        shape or per-line CRC -- a torn tail from a crashed append) stops
        the parse, and it plus everything after it is counted as torn.

        The ``store.journal_torn`` counter is charged **once per distinct
        journal damage state** (keyed on the torn tail's offset and
        content): repeated scans or recoveries of the same torn tail --
        and a replication follower tailing the journal every publish --
        leave the metric untouched, so it counts damage events, not
        reads.  *New* damage (a different torn tail) is charged again.
        """
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            return [], 0
        entries: List[JournalEntry] = []
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for index, line in enumerate(lines):
            entry = self._parse_journal_line(line)
            if entry is None:
                torn = len(lines) - index
                torn_tail = b"\n".join(lines[index:])
                state = (
                    index,
                    hashlib.blake2b(torn_tail, digest_size=16).digest(),
                )
                with self._lock:
                    new_damage = state != self._torn_counted
                    self._torn_counted = state
                if new_damage:
                    metrics.increment("store.journal_torn", torn)
                return entries, torn
            entries.append(entry)
        with self._lock:
            self._torn_counted = None
        return entries, 0

    @staticmethod
    def _parse_journal_line(line: bytes) -> Optional[JournalEntry]:
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
        match = _JOURNAL_LINE.match(text)
        if match is None:
            return None
        payload = match.group("payload")
        if int(match.group("crc"), 16) != (
            zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        ):
            return None
        try:
            body = json.loads(payload)
            return JournalEntry(
                name=body["name"],
                version=int(body["version"]),
                filename=body["file"],
                record_crc=int(body["crc"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Quarantine + scan
    # ------------------------------------------------------------------
    def quarantine(self, path, reason: str) -> Path:
        """Move a damaged record aside; it is never served or re-scanned."""
        path = Path(path)
        target = self.quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_dir / f"{path.name}.{suffix}"
        os.replace(path, target)
        target.with_suffix(target.suffix + ".reason").write_text(
            reason + "\n", encoding="utf-8"
        )
        self._fsync_dir(self.quarantine_dir)
        self._fsync_dir(self.records_dir)
        metrics.increment("store.corrupt_quarantined")
        return target

    def scan(self, quarantine_corrupt: bool = True) -> StoreScan:
        """Validate every committed record against its CRC and the journal.

        Corrupt or torn records are quarantined (when
        ``quarantine_corrupt``) and reported; valid records come back
        sorted by ``(name, version)`` ready for registry restoration.
        """
        journal, torn = self.journal_entries()
        journaled = {entry.filename: entry for entry in journal}
        records: List[ModelRecord] = []
        quarantined: List[Path] = []
        unjournaled: List[ModelRecord] = []
        seen_files = set()
        for path in self.record_paths():
            seen_files.add(path.name)
            try:
                record = self.read(path)
            except CorruptRecordError as exc:
                if quarantine_corrupt:
                    quarantined.append(self.quarantine(path, str(exc)))
                else:
                    quarantined.append(path)
                continue
            records.append(record)
            if path.name not in journaled:
                unjournaled.append(record)
                metrics.increment("store.recovered_unjournaled")
        missing = tuple(
            entry for entry in journal if entry.filename not in seen_files
        )
        if missing:
            metrics.increment("store.missing_records", len(missing))
        records.sort(key=lambda r: (r.name, r.version))
        return StoreScan(
            records=tuple(records),
            quarantined=tuple(quarantined),
            missing=missing,
            unjournaled=tuple(unjournaled),
            torn_journal_lines=torn,
        )

    # ------------------------------------------------------------------
    # Publish-side convenience (used by ModelRegistry)
    # ------------------------------------------------------------------
    def append_model(
        self,
        name: str,
        version: int,
        key: str,
        published_at: float,
        model,
        prior=None,
        eta: Optional[float] = None,
        sequential_state=None,
    ) -> Path:
        """Build and persist the record for one published model version.

        ``model`` is a :class:`~repro.regression.base.FittedModel`-like
        object (``basis`` + ``coefficients``); ``sequential_state`` is an
        optional :class:`repro.bmf.SequentialFitterState` carrying the
        samples and dual Cholesky factor for warm sequential resume.
        """
        record = ModelRecord(
            name=name,
            version=int(version),
            key=key,
            published_at=float(published_at),
            basis_digest=model.basis.cache_token(),
            basis_num_vars=model.basis.num_vars,
            basis_indices=tuple(model.basis.indices),
            coefficients=model.coefficients,
            prior_name=None if prior is None else prior.name,
            prior_mean=None if prior is None else prior.mean,
            prior_scale=None if prior is None else prior.scale,
            eta=None if eta is None else float(eta),
            chol_lower=(
                None if sequential_state is None else sequential_state.chol_lower
            ),
            chol_prior_index=(
                None
                if sequential_state is None
                else sequential_state.chol_prior_index
            ),
            train_x=None if sequential_state is None else sequential_state.x,
            train_f=None if sequential_state is None else sequential_state.f,
        )
        return self.append(record)
