"""Crash-safe on-disk model store: atomic records plus an append-only journal.

Layout under the store root (generation 0, the seed layout)::

    root/
      records/     one ``.rbmf`` blob per published version (atomic rename)
      quarantine/  records that failed validation, moved aside with a reason
      journal.log  append-only publish log, one checksummed line per record

Generational compaction (:mod:`repro.store.compaction`) folds the journal
prefix into a snapshot: the survivor records plus a checkpointed journal
land in a sibling generation directory and an atomically-swung ``CURRENT``
pointer names the live one::

    root/
      CURRENT               "gen-00000001" (write-temp -> fsync -> rename)
      gen-00000001/
        records/            survivor set (latest per key + history window)
        quarantine/         carried forward, sidecars tagged with generation
        journal.log         first line is a ``c1`` checkpoint, then appends

A store whose root has no ``CURRENT`` pointer *is* generation 0 -- the
layouts are bitwise compatible, and every path in this class resolves
through the live generation on access, so appends racing a compaction
swing land on whichever generation owns the append lock's critical
section.  Journal offsets are **global**: the checkpoint records how many
entries the retired prefix held (``base``), and entries in the live
journal continue the count, so follower offsets survive compaction.

Durability protocol (the classic write-temp -> fsync -> rename dance):

1. the encoded record is written to ``records/<file>.tmp``;
2. the temp file is flushed and ``fsync``'d -- its bytes are durable;
3. ``os.replace`` renames it over the final name -- the *commit point*:
   a record is published iff the final name exists;
4. the records directory is ``fsync``'d so the rename itself is durable;
5. a journal line is appended (and ``fsync``'d) describing the record.

A crash before step 3 leaves at most an invisible ``.tmp`` file; a crash
after step 3 but before step 5 leaves a valid record the journal does not
know about (recovery still admits it -- rename is the commit point, the
journal is an audit log).  The dangerous window is a *lost fsync* (step 2
skipped by a dying kernel): the rename can survive while the data pages
do not, leaving a **torn** record.  The ``store.fsync`` failpoint armed
with :class:`~repro.faults.SimulatedCrash` models exactly that worst
case, deterministically: the store truncates the half-written file,
renames it into place, and re-raises the crash -- recovery must then
catch the damage by CRC and quarantine the record.

Failpoints: ``store.write`` (mid-payload; a crash here abandons a
half-written temp file), ``store.fsync`` (before the data fsync),
``store.load`` (per record read).  All activity is reported through
integer ``store.*`` counters in :mod:`repro.runtime.metrics`, so chaos
signatures over them stay a pure function of the seed.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from ..locks import named_lock
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..faults import SimulatedCrash, failpoint
from ..runtime.metrics import metrics
from .format import CorruptRecordError, ModelRecord, decode_record, encode_record

__all__ = [
    "JournalCheckpoint",
    "JournalEntry",
    "JournalView",
    "ModelStore",
    "StoreWriteError",
    "StoreScan",
]

#: Fires mid-payload, after the first half of the record bytes are written;
#: a :class:`~repro.faults.SimulatedCrash` here abandons the temp file.
_FP_WRITE = failpoint("store.write")
#: Fires just before the temp file's data fsync; a crash here is modeled as
#: a lost fsync -- the rename lands but the tail pages do not (torn record).
_FP_FSYNC = failpoint("store.fsync")
#: Fires at the top of every record read; an injected error marks the
#: record unreadable (recovery quarantines it).
_FP_LOAD = failpoint("store.load")

_JOURNAL_LINE = re.compile(r"^v1 (?P<crc>[0-9a-f]{8}) (?P<payload>\{.*\})$")
#: Checkpoint line written by compaction as the *first* line of a new
#: generation's journal; same CRC discipline as ``v1`` entry lines.
_CHECKPOINT_LINE = re.compile(r"^c1 (?P<crc>[0-9a-f]{8}) (?P<payload>\{.*\})$")

#: ``CURRENT`` pointer file naming the live generation directory.
CURRENT_POINTER = "CURRENT"
#: Prefix of generation directory names (``gen-00000001``).
GENERATION_PREFIX = "gen-"


def generation_dir_name(generation: int) -> str:
    """Directory name of generation ``generation`` (``gen-<8 digits>``)."""
    return f"{GENERATION_PREFIX}{int(generation):08d}"


class StoreWriteError(RuntimeError):
    """A record could not be made durable (no partial state left behind)."""


@dataclass(frozen=True)
class JournalEntry:
    """One checksummed publish line from the append-only journal."""

    name: str
    version: int
    filename: str
    record_crc: int


@dataclass(frozen=True)
class JournalCheckpoint:
    """The ``c1`` snapshot header of a compacted generation's journal.

    ``base`` is the number of journal entries the retired prefix held --
    the global offset the snapshot stands in for.  ``snapshot`` lists the
    survivor records (sorted by ``(name, version)``, so per-name version
    order is increasing) exactly as entry lines would; ``quarantined``
    records ``(name, version, filename)`` for records that were journaled
    in the retired generation but failed validation during compaction and
    were moved to the new generation's quarantine instead of copied.
    """

    generation: int
    base: int
    snapshot: Tuple[JournalEntry, ...]
    quarantined: Tuple[Tuple[str, int, str], ...] = ()


@dataclass(frozen=True)
class JournalView:
    """Generation-aware parse of the live journal.

    Offsets are **global**: entry ``i`` of :attr:`entries` sits at global
    journal offset ``checkpoint_offset + i``.  Generation 0 (no
    checkpoint) has ``checkpoint_offset == 0`` and an empty snapshot, so
    the view degrades to the flat-journal semantics.
    """

    generation: int
    #: Global offset the snapshot stands in for (``0`` before compaction).
    checkpoint_offset: int
    #: Survivor manifest from the checkpoint (empty for generation 0).
    snapshot: Tuple[JournalEntry, ...]
    #: Post-checkpoint appends, in journal order.
    entries: Tuple[JournalEntry, ...]
    #: Trailing journal lines dropped as torn.
    torn_lines: int
    #: ``(name, version, filename)`` quarantined during compaction.
    compaction_quarantined: Tuple[Tuple[str, int, str], ...] = ()

    @property
    def end_offset(self) -> int:
        """Global offset one past the newest journaled entry."""
        return self.checkpoint_offset + len(self.entries)


@dataclass(frozen=True)
class StoreScan:
    """Outcome of one full store scan (see :meth:`ModelStore.scan`)."""

    #: Valid records, sorted by ``(name, version)``.
    records: Tuple[ModelRecord, ...]
    #: Final resting paths of records quarantined during this scan.
    quarantined: Tuple[Path, ...]
    #: Journal entries whose record file is missing from ``records/``.
    missing: Tuple[JournalEntry, ...]
    #: Valid records the journal does not mention (crash between the
    #: rename commit point and the journal append).
    unjournaled: Tuple[ModelRecord, ...]
    #: Trailing journal lines dropped as torn (bad per-line CRC / truncated).
    torn_journal_lines: int
    #: Live generation id the scan ran against (0 before any compaction).
    generation: int = 0
    #: Global journal offset folded into the generation's snapshot.
    checkpoint_offset: int = 0
    #: ``(name, version, filename)`` journaled in a retired generation but
    #: quarantined (not copied) by compaction -- the audit trail for
    #: records that must be neither served nor reported missing.
    compaction_quarantined: Tuple[Tuple[str, int, str], ...] = ()


def _slug(name: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name) or "model"
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=4).hexdigest()
    return f"{safe[:48]}-{digest}"


class ModelStore:
    """Directory-backed store of published model records.

    Parameters
    ----------
    root:
        Store directory (created, with subdirectories, when missing).
    use_fsync:
        Issue real ``os.fsync`` calls (temp file, directory, journal).
        Disable only in tests that measure pure codec cost; the crash
        guarantees obviously require it on.

    Thread safety: appends and journal writes are serialized under one
    lock; reads are lock-free (records are immutable once renamed in).
    """

    RECORD_SUFFIX = ".rbmf"

    def __init__(self, root, use_fsync: bool = True):
        self.root = Path(root)
        self.use_fsync = bool(use_fsync)
        self._lock = named_lock("store.append")
        # Fingerprint of the torn journal tail last charged to the
        # ``store.journal_torn`` counter; re-parsing the *same* damage
        # (repeated scans, follower tailing) must not re-count it.
        self._torn_counted: Optional[Tuple[int, bytes]] = None
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Generation resolution
    # ------------------------------------------------------------------
    @property
    def current_pointer(self) -> Path:
        """The ``CURRENT`` pointer file naming the live generation."""
        return self.root / CURRENT_POINTER

    def _resolve_generation(self) -> Tuple[int, Path]:
        """``(generation id, generation dir)`` of the live generation.

        A missing (or unparseable) ``CURRENT`` pointer means the root
        itself is generation 0 -- the pre-compaction layout.  The pointer
        is swung by ``os.replace``, so a read sees either the old or the
        new generation name, never a torn hybrid.
        """
        try:
            text = self.current_pointer.read_text(encoding="utf-8").strip()
        except (FileNotFoundError, OSError):
            return 0, self.root
        if not text.startswith(GENERATION_PREFIX):
            return 0, self.root
        try:
            generation = int(text[len(GENERATION_PREFIX) :])
        except ValueError:
            return 0, self.root
        return generation, self.root / text

    @property
    def generation(self) -> int:
        """Live generation id (0 until the first compaction)."""
        return self._resolve_generation()[0]

    @property
    def generation_dir(self) -> Path:
        """Directory of the live generation (the root for generation 0)."""
        return self._resolve_generation()[1]

    @property
    def records_dir(self) -> Path:
        """``records/`` of the live generation."""
        return self.generation_dir / "records"

    @property
    def quarantine_dir(self) -> Path:
        """``quarantine/`` of the live generation."""
        return self.generation_dir / "quarantine"

    @property
    def journal_path(self) -> Path:
        """``journal.log`` of the live generation."""
        return self.generation_dir / "journal.log"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_filename(self, name: str, version: int) -> str:
        """Deterministic record filename for ``(name, version)``."""
        return f"{_slug(name)}-v{int(version):08d}{self.RECORD_SUFFIX}"

    def append(self, record: ModelRecord) -> Path:
        """Durably persist ``record``; returns the committed path.

        Raises :class:`StoreWriteError` when the record could not be made
        durable (temp state cleaned up, nothing visible to recovery) and
        lets :class:`~repro.faults.SimulatedCrash` propagate untouched
        after performing crash-consistent (possibly torn) on-disk effects.
        """
        blob = encode_record(record)
        metrics.increment("store.writes")
        # Appends are deliberately serialized end-to-end: the write-ahead
        # protocol requires record bytes to hit disk before the journal
        # line, in version order, and readers never take this lock.  The
        # fsync-under-lock cost is the durability contract, not an
        # accident, so the REP011 findings below are audited suppressions.
        with self._lock:
            # Resolve the live generation *inside* the critical section:
            # compaction swings CURRENT under this same lock, so an append
            # can never land in a generation that is about to be retired.
            final = self.records_dir / self.record_filename(
                record.name, record.version
            )
            tmp = final.with_suffix(final.suffix + ".tmp")
            try:
                self._write_atomic(tmp, final, blob)  # repro: noqa[REP011] -- WAL ordering requires fsync under the append lock
            except SimulatedCrash:
                raise
            except Exception as exc:
                metrics.increment("store.write_failures")
                tmp.unlink(missing_ok=True)
                raise StoreWriteError(
                    f"could not persist {record.name!r} v{record.version}: {exc}"
                ) from exc
            self._journal_append(record, final.name, blob)  # repro: noqa[REP011] -- journal append must stay inside the same critical section
        return final

    def _write_atomic(self, tmp: Path, final: Path, blob: bytes) -> None:
        half = len(blob) // 2
        crash: Optional[SimulatedCrash] = None
        with open(tmp, "wb") as handle:
            handle.write(blob[:half])
            _FP_WRITE.hit()
            handle.write(blob[half:])
            handle.flush()
            try:
                _FP_FSYNC.hit()
            except SimulatedCrash as exc:
                # Lost-fsync crash: data pages past the first half never
                # reach disk, but the rename below still can.  Truncate
                # deterministically so recovery faces a torn record.
                crash = exc
                handle.truncate(half)
                handle.flush()
            else:
                if self.use_fsync:
                    os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._fsync_dir(self.records_dir)
        if crash is not None:
            metrics.increment("store.torn_writes")
            raise crash

    def _fsync_dir(self, directory: Path) -> None:
        if not self.use_fsync:
            return
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _journal_append(self, record: ModelRecord, filename: str, blob: bytes) -> None:
        payload = json.dumps(
            {
                "name": record.name,
                "version": record.version,
                "file": filename,
                "crc": zlib.crc32(blob[8:]) & 0xFFFFFFFF,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        line = f"v1 {zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x} {payload}\n"
        try:
            with open(self.journal_path, "ab") as handle:
                handle.write(line.encode("utf-8"))
                handle.flush()
                if self.use_fsync:
                    os.fsync(handle.fileno())
        except OSError:
            # The record itself is already committed (rename happened);
            # a failed journal append only degrades the audit trail.
            metrics.increment("store.journal_write_failures")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def record_paths(self) -> List[Path]:
        """Committed record files, sorted by filename (temp files excluded)."""
        return sorted(
            path
            for path in self.records_dir.iterdir()
            if path.suffix == self.RECORD_SUFFIX
        )

    def read(self, path) -> ModelRecord:
        """Read and validate one record file.

        Raises :class:`~repro.store.CorruptRecordError` for unreadable or
        damaged records (including injected ``store.load`` faults, which
        model unreadable sectors); :class:`~repro.faults.SimulatedCrash`
        propagates untouched.
        """
        path = Path(path)
        metrics.increment("store.loads")
        try:
            _FP_LOAD.hit()
        except SimulatedCrash:
            raise
        except Exception as exc:
            metrics.increment("store.load_failures")
            raise CorruptRecordError(f"{path.name}: unreadable: {exc}") from exc
        try:
            blob = path.read_bytes()
        except OSError as exc:
            metrics.increment("store.load_failures")
            raise CorruptRecordError(f"{path.name}: unreadable: {exc}") from exc
        try:
            return decode_record(blob)
        except CorruptRecordError:
            metrics.increment("store.load_failures")
            raise

    def journal_entries(self) -> Tuple[List[JournalEntry], int]:
        """Parse the live journal; returns ``(entries, torn_trailing_lines)``.

        ``entries`` are the live generation's *appends* -- entry ``i``
        sits at global journal offset ``checkpoint_offset + i`` (see
        :meth:`journal_view` for the checkpoint offset and the snapshot
        manifest; before any compaction the two notions coincide).

        Lines are validated front to back; the first damaged line (bad
        shape or per-line CRC -- a torn tail from a crashed append) stops
        the parse, and it plus everything after it is counted as torn.

        The ``store.journal_torn`` counter is charged **once per distinct
        journal damage state** (keyed on the torn tail's offset and
        content): repeated scans or recoveries of the same torn tail --
        and a replication follower tailing the journal every publish --
        leave the metric untouched, so it counts damage events, not
        reads.  *New* damage (a different torn tail) is charged again.
        """
        _, entries, torn = self._parse_journal()
        return list(entries), torn

    def journal_view(self) -> JournalView:
        """Generation-aware journal parse with global offsets.

        The view is the compaction-stable contract consumers should code
        against: :attr:`JournalView.checkpoint_offset` is the global
        offset the snapshot stands in for, :attr:`JournalView.snapshot`
        re-lists the survivor records a retired prefix folded into, and
        :attr:`JournalView.entries` continue the global offset count.  A
        follower that crossed a compaction boundary (the view's
        generation differs from the one it last saw) replays the snapshot
        idempotently instead of rewinding to raw offset 0.
        """
        generation = self.generation
        checkpoint, entries, torn = self._parse_journal()
        if checkpoint is None:
            return JournalView(
                generation=generation,
                checkpoint_offset=0,
                snapshot=(),
                entries=entries,
                torn_lines=torn,
            )
        return JournalView(
            generation=checkpoint.generation,
            checkpoint_offset=checkpoint.base,
            snapshot=checkpoint.snapshot,
            entries=entries,
            torn_lines=torn,
            compaction_quarantined=checkpoint.quarantined,
        )

    def _parse_journal(
        self, count_torn: bool = True
    ) -> Tuple[Optional[JournalCheckpoint], Tuple[JournalEntry, ...], int]:
        """Shared journal parse: ``(checkpoint, appends, torn_lines)``.

        Only the first line may be a ``c1`` checkpoint (compaction writes
        it before the generation goes live); a damaged checkpoint line is
        treated like any torn line -- the parse stops and everything from
        it on is counted torn.  ``count_torn=False`` skips the damage
        bookkeeping (used by compaction, which already holds the append
        lock the bookkeeping would re-acquire).
        """
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            return None, (), 0
        checkpoint: Optional[JournalCheckpoint] = None
        entries: List[JournalEntry] = []
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for index, line in enumerate(lines):
            if index == 0 and line.startswith(b"c1 "):
                checkpoint = self._parse_checkpoint_line(line)
                if checkpoint is not None:
                    continue
            entry = self._parse_journal_line(line)
            if entry is None:
                torn = len(lines) - index
                if count_torn:
                    torn_tail = b"\n".join(lines[index:])
                    state = (
                        index,
                        hashlib.blake2b(torn_tail, digest_size=16).digest(),
                    )
                    with self._lock:
                        new_damage = state != self._torn_counted
                        self._torn_counted = state
                    if new_damage:
                        metrics.increment("store.journal_torn", torn)
                return checkpoint, tuple(entries), torn
            entries.append(entry)
        if count_torn:
            with self._lock:
                self._torn_counted = None
        return checkpoint, tuple(entries), 0

    @staticmethod
    def _parse_journal_line(line: bytes) -> Optional[JournalEntry]:
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
        match = _JOURNAL_LINE.match(text)
        if match is None:
            return None
        payload = match.group("payload")
        if int(match.group("crc"), 16) != (
            zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        ):
            return None
        try:
            body = json.loads(payload)
            return JournalEntry(
                name=body["name"],
                version=int(body["version"]),
                filename=body["file"],
                record_crc=int(body["crc"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def encode_checkpoint(checkpoint: JournalCheckpoint) -> bytes:
        """Serialize a checkpoint as the ``c1`` journal header line."""
        payload = json.dumps(
            {
                "generation": int(checkpoint.generation),
                "base": int(checkpoint.base),
                "snapshot": [
                    [e.name, e.version, e.filename, e.record_crc]
                    for e in checkpoint.snapshot
                ],
                "quarantined": [
                    [name, version, filename]
                    for name, version, filename in checkpoint.quarantined
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        return f"c1 {crc:08x} {payload}\n".encode("utf-8")

    @staticmethod
    def _parse_checkpoint_line(line: bytes) -> Optional[JournalCheckpoint]:
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
        match = _CHECKPOINT_LINE.match(text)
        if match is None:
            return None
        payload = match.group("payload")
        if int(match.group("crc"), 16) != (
            zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        ):
            return None
        try:
            body = json.loads(payload)
            snapshot = tuple(
                JournalEntry(
                    name=name,
                    version=int(version),
                    filename=filename,
                    record_crc=int(crc),
                )
                for name, version, filename, crc in body["snapshot"]
            )
            quarantined = tuple(
                (name, int(version), filename)
                for name, version, filename in body.get("quarantined", [])
            )
            return JournalCheckpoint(
                generation=int(body["generation"]),
                base=int(body["base"]),
                snapshot=snapshot,
                quarantined=quarantined,
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Quarantine + scan
    # ------------------------------------------------------------------
    def quarantine(self, path, reason: str, generation: Optional[int] = None) -> Path:
        """Move a damaged record aside; it is never served or re-scanned.

        The ``.reason`` sidecar carries the generation the record came
        from (``generation:`` line) so records journaled in a retired
        generation stay attributable after compaction; ``generation``
        defaults to the live one.
        """
        path = Path(path)
        quarantine_dir = self.quarantine_dir
        target = quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine_dir / f"{path.name}.{suffix}"
        os.replace(path, target)
        origin = self.generation if generation is None else int(generation)
        target.with_suffix(target.suffix + ".reason").write_text(
            f"{reason}\ngeneration: {origin}\n", encoding="utf-8"
        )
        self._fsync_dir(quarantine_dir)
        self._fsync_dir(self.records_dir)
        metrics.increment("store.corrupt_quarantined")
        return target

    def scan(self, quarantine_corrupt: bool = True) -> StoreScan:
        """Validate every committed record against its CRC and the journal.

        Corrupt or torn records are quarantined (when
        ``quarantine_corrupt``) and reported; valid records come back
        sorted by ``(name, version)`` ready for registry restoration.
        The snapshot manifest of a compacted generation counts as
        journaled (survivors are re-listed by the checkpoint), and a scan
        that races a compaction swing retries against the new generation
        so it never mixes two generations' contents.
        """
        for _ in range(3):
            generation = self.generation
            result = self._scan_once(quarantine_corrupt)
            if self.generation == generation:
                return result
        return self._scan_once(quarantine_corrupt)

    def _scan_once(self, quarantine_corrupt: bool) -> StoreScan:
        view = self.journal_view()
        journaled = {
            entry.filename: entry for entry in view.snapshot + view.entries
        }
        records: List[ModelRecord] = []
        quarantined: List[Path] = []
        unjournaled: List[ModelRecord] = []
        seen_files = set()
        for path in self.record_paths():
            seen_files.add(path.name)
            try:
                record = self.read(path)
            except CorruptRecordError as exc:
                if quarantine_corrupt:
                    quarantined.append(self.quarantine(path, str(exc)))
                else:
                    quarantined.append(path)
                continue
            records.append(record)
            if path.name not in journaled:
                unjournaled.append(record)
                metrics.increment("store.recovered_unjournaled")
        missing = tuple(
            entry
            for entry in view.snapshot + view.entries
            if entry.filename not in seen_files
        )
        if missing:
            metrics.increment("store.missing_records", len(missing))
        records.sort(key=lambda r: (r.name, r.version))
        return StoreScan(
            records=tuple(records),
            quarantined=tuple(quarantined),
            missing=missing,
            unjournaled=tuple(unjournaled),
            torn_journal_lines=view.torn_lines,
            generation=view.generation,
            checkpoint_offset=view.checkpoint_offset,
            compaction_quarantined=view.compaction_quarantined,
        )

    # ------------------------------------------------------------------
    # Publish-side convenience (used by ModelRegistry)
    # ------------------------------------------------------------------
    def append_model(
        self,
        name: str,
        version: int,
        key: str,
        published_at: float,
        model,
        prior=None,
        eta: Optional[float] = None,
        sequential_state=None,
    ) -> Path:
        """Build and persist the record for one published model version.

        ``model`` is a :class:`~repro.regression.base.FittedModel`-like
        object (``basis`` + ``coefficients``); ``sequential_state`` is an
        optional :class:`repro.bmf.SequentialFitterState` carrying the
        samples and dual Cholesky factor for warm sequential resume.
        """
        record = ModelRecord(
            name=name,
            version=int(version),
            key=key,
            published_at=float(published_at),
            basis_digest=model.basis.cache_token(),
            basis_num_vars=model.basis.num_vars,
            basis_indices=tuple(model.basis.indices),
            coefficients=model.coefficients,
            prior_name=None if prior is None else prior.name,
            prior_mean=None if prior is None else prior.mean,
            prior_scale=None if prior is None else prior.scale,
            eta=None if eta is None else float(eta),
            chol_lower=(
                None if sequential_state is None else sequential_state.chol_lower
            ),
            chol_prior_index=(
                None
                if sequential_state is None
                else sequential_state.chol_prior_index
            ),
            train_x=None if sequential_state is None else sequential_state.x,
            train_f=None if sequential_state is None else sequential_state.f,
        )
        return self.append(record)
