"""Crash-safe model persistence and warm-restart recovery.

Four pieces (see ``docs/store.md``):

* :mod:`~repro.store.format` -- the checksummed record codec
  (:class:`ModelRecord`, a single CRC32-covered blob per published
  version; any single flipped byte is detected);
* :mod:`~repro.store.store` -- :class:`ModelStore`, atomic
  write-temp -> fsync -> rename persistence with an append-only journal
  and a quarantine directory, instrumented with ``store.*`` failpoints
  for deterministic crash simulation;
* :mod:`~repro.store.recovery` -- :class:`RecoveryManager`, which turns
  a store directory back into a live
  :class:`~repro.serving.ModelRegistry` (full recovery or
  point-in-time via :meth:`~RecoveryManager.recover_at`) and
  warm-restarts sequential fitters from their persisted Cholesky
  factors;
* :mod:`~repro.store.compaction` -- :func:`compact`, crash-safe
  generational snapshot compaction (survivor set + journal checkpoint
  in a fresh generation directory behind an atomically-swung
  ``CURRENT`` pointer).
"""

from .format import (
    FORMAT_VERSION,
    MAGIC,
    CorruptRecordError,
    ModelRecord,
    decode_record,
    encode_record,
    record_crc,
)
from .compaction import CompactionReport, compact, stale_generations
from .recovery import RecoveryManager, RecoveryReport
from .store import (
    JournalCheckpoint,
    JournalEntry,
    JournalView,
    ModelStore,
    StoreScan,
    StoreWriteError,
)

__all__ = [
    "CompactionReport",
    "CorruptRecordError",
    "FORMAT_VERSION",
    "JournalCheckpoint",
    "JournalEntry",
    "JournalView",
    "MAGIC",
    "ModelRecord",
    "ModelStore",
    "RecoveryManager",
    "RecoveryReport",
    "StoreScan",
    "StoreWriteError",
    "compact",
    "decode_record",
    "encode_record",
    "record_crc",
    "stale_generations",
]
