"""Crash-safe model persistence and warm-restart recovery.

Three pieces (see ``docs/store.md``):

* :mod:`~repro.store.format` -- the checksummed record codec
  (:class:`ModelRecord`, a single CRC32-covered blob per published
  version; any single flipped byte is detected);
* :mod:`~repro.store.store` -- :class:`ModelStore`, atomic
  write-temp -> fsync -> rename persistence with an append-only journal
  and a quarantine directory, instrumented with ``store.*`` failpoints
  for deterministic crash simulation;
* :mod:`~repro.store.recovery` -- :class:`RecoveryManager`, which turns
  a store directory back into a live
  :class:`~repro.serving.ModelRegistry` and warm-restarts sequential
  fitters from their persisted Cholesky factors.
"""

from .format import (
    FORMAT_VERSION,
    MAGIC,
    CorruptRecordError,
    ModelRecord,
    decode_record,
    encode_record,
    record_crc,
)
from .recovery import RecoveryManager, RecoveryReport
from .store import JournalEntry, ModelStore, StoreScan, StoreWriteError

__all__ = [
    "CorruptRecordError",
    "FORMAT_VERSION",
    "JournalEntry",
    "MAGIC",
    "ModelRecord",
    "ModelStore",
    "RecoveryManager",
    "RecoveryReport",
    "StoreScan",
    "StoreWriteError",
    "decode_record",
    "encode_record",
    "record_crc",
]
