"""Static analysis + runtime contracts guarding the runtime's invariants.

Two halves of one guarantee:

* :mod:`repro.analysis.engine` / :mod:`repro.analysis.rules` /
  :mod:`repro.analysis.concurrency` -- a reusable AST lint engine with
  domain rules REP001-REP013 (deterministic RNG flow, no float-literal
  equality, locked module state, no ``assert`` validation, lock-discipline
  analysis REP010-REP012, metric-catalog drift REP013), run as
  ``python -m repro.analysis src tests`` or ``repro-lint`` in CI.
* :mod:`repro.analysis.contracts` -- runtime decorators asserting array
  shape/dtype/writeability where static analysis cannot see (cache-served
  matrices stay read-only, design matrices are C-contiguous float64).

See ``docs/analysis.md`` for rules, suppressions, and the baseline flow.
"""

from . import concurrency, rules  # noqa: F401 -- importing registers the rule set
from .baseline import filter_baselined, load_baseline, write_baseline
from .contracts import (
    ContractViolationError,
    accepts_arrays,
    check_array,
    check_close,
    contracts_enabled,
    returns_array,
    set_contracts_enabled,
)
from .engine import LintEngine, ProjectRule, Rule, register_rule, registered_rules
from .reporters import format_github, format_json, format_text, summarize
from .violations import Severity, Violation

__all__ = [
    "ContractViolationError",
    "LintEngine",
    "ProjectRule",
    "Rule",
    "Severity",
    "Violation",
    "accepts_arrays",
    "check_array",
    "check_close",
    "concurrency",
    "contracts_enabled",
    "filter_baselined",
    "format_github",
    "format_json",
    "format_text",
    "load_baseline",
    "register_rule",
    "registered_rules",
    "returns_array",
    "rules",
    "set_contracts_enabled",
    "summarize",
    "write_baseline",
]
