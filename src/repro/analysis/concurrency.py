"""Static concurrency analysis: per-class lock models and REP010–REP012.

The pass builds a :class:`ClassLockModel` for every class it sees:

* which attributes are locks (``self.X = threading.Lock()`` / ``RLock`` /
  ``Condition``, or the :mod:`repro.locks` ``named_lock`` /
  ``named_rlock`` / ``named_condition`` factories),
* every ``self.*`` attribute access with the set of locks held at that
  point (``with self._lock:`` regions, including multi-item and nested
  ``with`` statements; nested ``def`` / ``lambda`` bodies run deferred,
  so they are scanned with an empty held set),
* blocking operations, internal ``self.method()`` calls, and
  ``self.attr.method()`` calls with their held sets,
* candidate types for plain attributes, inferred from constructor calls
  (``self.store = ModelStore(...)``, including through ``x if c else y``)
  and parameter annotations (``store: ModelStore``, ``Optional[...]``
  unwrapped) — enough to resolve cross-class lock acquisitions.

Three rules consume the model:

* **REP010** — an attribute *written* under a lock anywhere in the class
  is shared state guarded by that lock; any access to it (read or write,
  outside ``__init__``) that holds none of its guarding locks is a race.
  Methods named ``*_locked`` follow the repo convention "caller holds the
  lock": they are exempt, and class-internal call sites donate their held
  sets both to guard inference and to the callee's effective held set.
* **REP011** — a blocking operation (``time.sleep``, ``os.fsync``, file
  I/O via ``open``/``Path.read_*``/``write_*``, ``Future.result()``,
  un-timed ``join()``/``wait()``/``wait_for()``) performed while holding
  a lock stalls every thread queued on that lock.  One level of
  interprocedural resolution: ``self.helper()`` under a lock is flagged
  when the helper's body blocks.
* **REP012** — a project-wide lock-order graph.  Nodes are
  ``ClassName.attr``; edges come from nested acquisitions, one-level
  internal calls, and cross-class ``self.attr.method()`` calls resolved
  through the inferred attribute types, merged with the documented seed
  orderings in :data:`DEFAULT_SEED_EDGES`.  Any cycle is a potential
  deadlock and is reported at the first located edge of the cycle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..locks import graph_cycles
from .engine import LintContext, ProjectRule, Rule, register_rule
from .violations import Severity, Violation

__all__ = [
    "ClassLockModel",
    "MethodModel",
    "build_class_model",
    "DEFAULT_SEED_EDGES",
    "GuardedAttributeRule",
    "BlockingUnderLockRule",
    "LockOrderRule",
]

#: Call names (last dotted segment) that create a lock attribute, and the
#: kind of primitive they produce.
LOCK_FACTORY_KINDS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "named_lock": "lock",
    "named_rlock": "rlock",
    "named_condition": "condition",
}

#: Methods whose writes/reads are construction, not shared-state access.
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__", "__init_subclass__"})

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "rotate",
    }
)

#: Dotted call names that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep()",
    "os.fsync": "os.fsync()",
    "open": "open()",
    "io.open": "io.open()",
}

#: Method names that block regardless of receiver type.
_BLOCKING_METHODS = {
    "result": "Future.result()",
    "read_bytes": "read_bytes()",
    "read_text": "read_text()",
    "write_bytes": "write_bytes()",
    "write_text": "write_text()",
}

#: Documented cross-module lock orderings that static inference cannot
#: fully recover (store calls hide behind ``_persist``-style indirection).
#: Each pair means "the left lock may be held while the right is taken".
DEFAULT_SEED_EDGES: Tuple[Tuple[str, str], ...] = (
    # registry.publish/restore: version-allocate -> persist -> commit.
    ("ModelRegistry._publish_lock", "ModelRegistry._lock"),
    ("ModelRegistry._publish_lock", "ModelStore._lock"),
    # router holds its routing lock while touching shard registries and
    # the follower offsets during kill/failover bookkeeping.
    ("ShardRouter._lock", "ModelRegistry._lock"),
    ("ShardRouter._lock", "JournalFollower._lock"),
    ("JournalFollower._lock", "ModelStore._lock"),
    # engine stats/stop paths look at queue depth and breaker state.
    ("PredictionEngine._state_lock", "_BoundedRequestQueue._cond"),
    ("PredictionEngine._stats_lock", "_BoundedRequestQueue._cond"),
    ("PredictionEngine._stats_lock", "CircuitBreaker._lock"),
)


@dataclass
class _Access:
    attr: str
    write: bool
    held: FrozenSet[str]
    node: ast.AST


@dataclass
class _BlockingOp:
    desc: str
    held: FrozenSet[str]
    node: ast.AST


@dataclass
class _SelfCall:
    callee: str
    held: FrozenSet[str]
    node: ast.AST


@dataclass
class _AttrCall:
    attr: str
    method: str
    held: FrozenSet[str]
    node: ast.AST


@dataclass
class _Acquisition:
    lock: str
    held_before: FrozenSet[str]
    node: ast.AST


@dataclass
class MethodModel:
    """Everything the rules need to know about one method body."""

    name: str
    accesses: List[_Access] = field(default_factory=list)
    blocking: List[_BlockingOp] = field(default_factory=list)
    self_calls: List[_SelfCall] = field(default_factory=list)
    attr_calls: List[_AttrCall] = field(default_factory=list)
    acquisitions: List[_Acquisition] = field(default_factory=list)


@dataclass
class ClassLockModel:
    """Per-class lock model: lock attrs, method scans, attr type guesses."""

    name: str
    node: ast.ClassDef
    locks: Dict[str, str]
    methods: Dict[str, MethodModel]
    attr_types: Dict[str, Tuple[str, ...]]


def _call_name(func: ast.AST) -> Optional[str]:
    """Dotted name of a call target (``time.sleep``), or None."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lock_kind(value: ast.AST) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    dotted = _call_name(value.func)
    if dotted is None:
        return None
    return LOCK_FACTORY_KINDS.get(dotted.rsplit(".", 1)[-1])


def _self_attr_root(node: ast.AST) -> Optional[str]:
    """The attribute name X for expressions rooted at ``self.X``."""
    while isinstance(node, (ast.Subscript, ast.Starred, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def _annotation_names(node: Optional[ast.AST]) -> Tuple[str, ...]:
    """Class-name candidates named by a parameter annotation."""
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value.rsplit(".", 1)[-1],)
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return (node.attr,)
    if isinstance(node, ast.Subscript):
        head = _annotation_names(node.value)
        if head and head[0] in ("Optional", "Union"):
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                out: Tuple[str, ...] = ()
                for elt in inner.elts:
                    out += _annotation_names(elt)
            else:
                out = _annotation_names(inner)
            return tuple(n for n in out if n != "None")
    return ()


def _type_candidates(
    expr: ast.AST, annotations: Dict[str, Optional[ast.AST]]
) -> Tuple[str, ...]:
    """Class-name candidates for the value assigned to an attribute."""
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name):
            return (expr.func.id,)
        if isinstance(expr.func, ast.Attribute):
            return (expr.func.attr,)
        return ()
    if isinstance(expr, ast.Name) and expr.id in annotations:
        return _annotation_names(annotations[expr.id])
    if isinstance(expr, ast.IfExp):
        return _type_candidates(expr.body, annotations) + _type_candidates(
            expr.orelse, annotations
        )
    if isinstance(expr, ast.BoolOp):
        out: Tuple[str, ...] = ()
        for value in expr.values:
            out += _type_candidates(value, annotations)
        return out
    return ()


class _MethodScanner(ast.NodeVisitor):
    """One pass over a method body, tracking the held-lock set."""

    def __init__(self, lock_attrs: FrozenSet[str], model: MethodModel):
        self.lock_attrs = lock_attrs
        self.model = model
        self._held: List[str] = []
        # wait_for predicates run with the condition's lock (re)held, not
        # deferred like ordinary lambdas; keyed by lambda node identity.
        self._predicate_locks: Dict[ast.AST, str] = {}

    def _held_set(self) -> FrozenSet[str]:
        return frozenset(self._held)

    def _lock_attr(self, expr: ast.AST) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.lock_attrs
        ):
            return expr.attr
        return None

    # -- lock regions -----------------------------------------------------

    def _visit_with(self, node: ast.AST) -> None:
        acquired: List[str] = []
        for item in node.items:  # type: ignore[attr-defined]
            lock = self._lock_attr(item.context_expr)
            if lock is not None:
                self.model.acquisitions.append(
                    _Acquisition(lock, self._held_set(), item.context_expr)
                )
                acquired.append(lock)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self._held.extend(acquired)
        for stmt in node.body:  # type: ignore[attr-defined]
            self.visit(stmt)
        if acquired:
            del self._held[-len(acquired) :]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- deferred bodies run outside the current lock region ---------------

    def _visit_deferred(self, node: ast.AST) -> None:
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved

    visit_FunctionDef = _visit_deferred
    visit_AsyncFunctionDef = _visit_deferred

    def visit_Lambda(self, node: ast.Lambda) -> None:
        predicate_lock = self._predicate_locks.pop(node, None)
        if predicate_lock is None:
            self._visit_deferred(node)
            return
        self._held.append(predicate_lock)
        self.generic_visit(node)
        self._held.pop()

    # -- attribute stores --------------------------------------------------

    def _record_store(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt)
            return
        root = _self_attr_root(target)
        if root is not None and root not in self.lock_attrs:
            self.model.accesses.append(
                _Access(root, True, self._held_set(), target)
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_store(target)
        self.generic_visit(node)

    # -- reads -------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        root = _self_attr_root(node)
        if root is not None and root not in self.lock_attrs:
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            self.model.accesses.append(
                _Access(root, write, self._held_set(), node)
            )
        self.generic_visit(node)

    # -- calls: blocking ops, mutators, call graph --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        held = self._held_set()
        func = node.func
        dotted = _call_name(func)
        if dotted in _BLOCKING_CALLS:
            self.model.blocking.append(
                _BlockingOp(_BLOCKING_CALLS[dotted], held, node)
            )
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _BLOCKING_METHODS:
                self.model.blocking.append(
                    _BlockingOp(_BLOCKING_METHODS[attr], held, node)
                )
            elif attr == "join" and not node.args and not node.keywords:
                self.model.blocking.append(
                    _BlockingOp("join() without a timeout", held, node)
                )
            elif attr in ("wait", "wait_for"):
                receiver_lock = self._lock_attr(func.value)
                if (
                    attr == "wait_for"
                    and receiver_lock is not None
                    and node.args
                    and isinstance(node.args[0], ast.Lambda)
                ):
                    self._predicate_locks[node.args[0]] = receiver_lock
                positional_timeout = 1 if attr == "wait" else 2
                timed = len(node.args) >= positional_timeout or any(
                    kw.arg == "timeout" for kw in node.keywords
                )
                if not timed:
                    # Waiting on a condition releases the condition's own
                    # lock but keeps every *other* held lock pinned.
                    receiver = self._lock_attr(func.value)
                    others = held - {receiver} if receiver else held
                    self.model.blocking.append(
                        _BlockingOp(f"un-timed {attr}()", others, node)
                    )
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.model.self_calls.append(_SelfCall(func.attr, held, node))
            elif (
                isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                self.model.attr_calls.append(
                    _AttrCall(func.value.attr, func.attr, held, node)
                )
            if func.attr in _MUTATOR_METHODS:
                root = _self_attr_root(func.value)
                if root is not None and root not in self.lock_attrs:
                    self.model.accesses.append(_Access(root, True, held, node))
        self.generic_visit(node)


def build_class_model(classdef: ast.ClassDef) -> ClassLockModel:
    """Build the lock model for one class definition."""
    locks: Dict[str, str] = {}
    for node in ast.walk(classdef):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        kind = _lock_kind(value)
        if kind is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks[target.attr] = kind

    lock_attrs = frozenset(locks)
    methods: Dict[str, MethodModel] = {}
    attr_types: Dict[str, Tuple[str, ...]] = {}
    for stmt in classdef.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = stmt.args
        annotations: Dict[str, Optional[ast.AST]] = {
            a.arg: a.annotation
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
            if a.annotation is not None
        }
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    for cand in _type_candidates(node.value, annotations):
                        existing = attr_types.get(target.attr, ())
                        if cand not in existing:
                            attr_types[target.attr] = existing + (cand,)
        model = MethodModel(stmt.name)
        scanner = _MethodScanner(lock_attrs, model)
        for body_stmt in stmt.body:
            scanner.visit(body_stmt)
        methods[stmt.name] = model

    return ClassLockModel(classdef.name, classdef, locks, methods, attr_types)


def _internal_call_held(model: ClassLockModel) -> Dict[str, FrozenSet[str]]:
    """Union of held-lock sets at class-internal call sites, per callee."""
    out: Dict[str, FrozenSet[str]] = {}
    for method in model.methods.values():
        for call in method.self_calls:
            out[call.callee] = out.get(call.callee, frozenset()) | call.held
    return out


@register_rule
class GuardedAttributeRule(Rule):
    """REP010: guarded attribute accessed without its guarding lock."""

    rule_id = "REP010"
    description = "shared attribute accessed without its guarding lock"
    rationale = (
        "an attribute written under a lock is shared mutable state; any "
        "access that holds none of its guarding locks races with the "
        "guarded writers"
    )
    severity = Severity.ERROR
    node_types = (ast.ClassDef,)
    applies_to_tests = False

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        model = build_class_model(node)
        if not model.locks:
            return
        call_held = _internal_call_held(model)

        guards: Dict[str, Set[str]] = {}
        for name, method in model.methods.items():
            if name in _INIT_METHODS:
                continue
            inherited: FrozenSet[str] = frozenset()
            if name.endswith("_locked"):
                inherited = call_held.get(name, frozenset())
            for access in method.accesses:
                if not access.write:
                    continue
                effective = access.held | inherited
                if effective:
                    guards.setdefault(access.attr, set()).update(effective)
        if not guards:
            return

        seen: Set[Tuple[str, int]] = set()
        for name, method in model.methods.items():
            if name in _INIT_METHODS:
                continue
            if name.endswith("_locked"):
                inherited_opt = call_held.get(name)
                if inherited_opt is None:
                    # No internal call sites: trust the *_locked convention
                    # that the caller holds the guarding lock.
                    continue
                inherited = inherited_opt
            else:
                inherited = frozenset()
            for access in method.accesses:
                guard = guards.get(access.attr)
                if not guard:
                    continue
                if (access.held | inherited) & guard:
                    continue
                key = (access.attr, getattr(access.node, "lineno", 0))
                if key in seen:
                    continue
                seen.add(key)
                lock_list = ", ".join(sorted(f"self.{g}" for g in guard))
                verb = "written" if access.write else "read"
                yield self.violation(
                    access.node,
                    ctx,
                    f"{model.name}.{access.attr} is guarded by {lock_list} "
                    f"but {verb} in {name}() without it",
                )


@register_rule
class BlockingUnderLockRule(Rule):
    """REP011: blocking operation performed while holding a lock."""

    rule_id = "REP011"
    description = "blocking operation performed while holding a lock"
    rationale = (
        "sleeping, file I/O, fsync, un-timed waits, and Future.result() "
        "under a lock stall every thread queued on that lock; move the "
        "blocking work outside the critical section"
    )
    severity = Severity.ERROR
    node_types = (ast.ClassDef,)
    applies_to_tests = False

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        model = build_class_model(node)
        if not model.locks:
            return
        seen: Set[Tuple[int, str]] = set()

        def emit(anchor: ast.AST, message: str) -> Iterator[Violation]:
            key = (getattr(anchor, "lineno", 0), message)
            if key not in seen:
                seen.add(key)
                yield self.violation(anchor, ctx, message)

        for method in model.methods.values():
            for op in method.blocking:
                if not op.held:
                    continue
                locks = ", ".join(sorted(f"self.{h}" for h in op.held))
                yield from emit(
                    op.node, f"{op.desc} while holding {locks}"
                )
            for call in method.self_calls:
                if not call.held:
                    continue
                callee = model.methods.get(call.callee)
                if callee is None:
                    continue
                locks = ", ".join(sorted(f"self.{h}" for h in call.held))
                for op in callee.blocking:
                    if op.held:
                        continue  # flagged at its own site
                    yield from emit(
                        call.node,
                        f"self.{call.callee}() performs {op.desc} while "
                        f"holding {locks}",
                    )


@register_rule
class LockOrderRule(ProjectRule):
    """REP012: cycle in the interprocedural lock-order graph."""

    rule_id = "REP012"
    description = "lock-order cycle (potential deadlock)"
    rationale = (
        "two threads taking the same locks in different orders can "
        "deadlock; the acquisition graph over every class plus the "
        "documented seed orderings must stay acyclic"
    )
    severity = Severity.ERROR
    applies_to_tests = False

    def __init__(
        self, seed_edges: Optional[Tuple[Tuple[str, str], ...]] = None
    ) -> None:
        self.seed_edges: Tuple[Tuple[str, str], ...] = (
            DEFAULT_SEED_EDGES if seed_edges is None else tuple(seed_edges)
        )
        self._models: Dict[str, Tuple[ClassLockModel, str]] = {}

    def begin(self) -> None:
        self._models = {}

    def observe(self, ctx: LintContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                model = build_class_model(node)
                if model.locks or model.methods:
                    self._models.setdefault(model.name, (model, ctx.path))

    def edges(self) -> Dict[Tuple[str, str], Optional[Tuple[str, int]]]:
        """The merged lock-order graph: edge -> first located source site."""
        edges: Dict[Tuple[str, str], Optional[Tuple[str, int]]] = {}

        def add(src: str, dst: str, site: Optional[Tuple[str, int]]) -> None:
            if src != dst:
                edges.setdefault((src, dst), site)

        for name, (model, path) in sorted(self._models.items()):
            for method in model.methods.values():
                for acq in method.acquisitions:
                    site = (path, getattr(acq.node, "lineno", 1))
                    for held in sorted(acq.held_before):
                        add(f"{name}.{held}", f"{name}.{acq.lock}", site)
                for call in method.self_calls:
                    if not call.held:
                        continue
                    callee = model.methods.get(call.callee)
                    if callee is None:
                        continue
                    site = (path, getattr(call.node, "lineno", 1))
                    for acq in callee.acquisitions:
                        for held in sorted(call.held):
                            add(f"{name}.{held}", f"{name}.{acq.lock}", site)
                for call in method.attr_calls:
                    if not call.held:
                        continue
                    target = self._resolve(model, call.attr)
                    if target is None:
                        continue
                    target_model = self._models[target][0]
                    target_method = target_model.methods.get(call.method)
                    if target_method is None:
                        continue
                    site = (path, getattr(call.node, "lineno", 1))
                    for acq in target_method.acquisitions:
                        for held in sorted(call.held):
                            add(
                                f"{name}.{held}",
                                f"{target}.{acq.lock}",
                                site,
                            )
        for src, dst in self.seed_edges:
            add(src, dst, None)
        return edges

    def _resolve(self, model: ClassLockModel, attr: str) -> Optional[str]:
        for candidate in model.attr_types.get(attr, ()):
            if candidate in self._models:
                return candidate
        return None

    def finish(self) -> Iterator[Violation]:
        edges = self.edges()
        for cycle in graph_cycles(set(edges)):
            site: Optional[Tuple[str, int]] = None
            for src, dst in zip(cycle, cycle[1:]):
                site = edges.get((src, dst))
                if site is not None:
                    break
            path, line = site if site is not None else ("<lock-order-seeds>", 1)
            chain = " -> ".join(cycle)
            yield Violation(
                path=path,
                line=line,
                col=0,
                rule_id=self.rule_id,
                message=f"lock-order cycle: {chain}",
                severity=self.severity,
                line_text="",
            )
