"""Runtime array contracts for public API boundaries.

The static rules in :mod:`repro.analysis.rules` catch what is decidable
from source; this module enforces the dynamic half of the same invariants:
arrays served from the design-matrix cache must stay read-only, and
``design_matrix`` outputs must be C-contiguous float64.  Checks are flag
inspections (no data traversal), cheap enough to leave on everywhere, and
can be disabled globally (``REPRO_CONTRACTS=0`` or
:func:`set_contracts_enabled`) for micro-benchmarks.

Contract failures raise :class:`ContractViolationError` — a real exception,
not an ``assert``, so they survive ``python -O`` (the REP007 invariant).
"""

from __future__ import annotations

import functools
import os
import threading
from ..locks import named_lock
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ContractViolationError",
    "check_array",
    "check_close",
    "returns_array",
    "accepts_arrays",
    "contracts_enabled",
    "set_contracts_enabled",
]


class ContractViolationError(TypeError):
    """An array crossed an API boundary in a state its contract forbids."""


_state_lock = named_lock("analysis.contracts")
_enabled = os.environ.get("REPRO_CONTRACTS", "1").strip().lower() not in (
    "0",
    "false",
    "off",
)


def contracts_enabled() -> bool:
    """Whether runtime contract checks are currently active."""
    with _state_lock:
        return _enabled


def set_contracts_enabled(enabled: bool) -> bool:
    """Toggle contract checking process-wide; returns the previous setting."""
    global _enabled
    with _state_lock:
        previous = _enabled
        _enabled = bool(enabled)
        return previous


def check_array(
    value: Any,
    *,
    name: str = "array",
    dtype: Optional[type] = None,
    ndim: Optional[int] = None,
    shape: Optional[Tuple[Optional[int], ...]] = None,
    writeable: Optional[bool] = None,
    c_contiguous: Optional[bool] = None,
) -> Any:
    """Validate an ndarray against a contract; returns it unchanged.

    Every criterion is optional; ``shape`` entries of ``None`` are
    wildcards (``(None, 3)`` = "any number of rows, exactly 3 columns").
    No-op (beyond one lock acquisition) when contracts are disabled.
    """
    if not contracts_enabled():
        return value
    if not isinstance(value, np.ndarray):
        raise ContractViolationError(
            f"{name}: expected numpy.ndarray, got {type(value).__name__}"
        )
    if dtype is not None and value.dtype != np.dtype(dtype):
        raise ContractViolationError(
            f"{name}: expected dtype {np.dtype(dtype)}, got {value.dtype}"
        )
    if ndim is not None and value.ndim != ndim:
        raise ContractViolationError(
            f"{name}: expected {ndim}-D array, got {value.ndim}-D {value.shape}"
        )
    if shape is not None:
        if value.ndim != len(shape) or any(
            want is not None and got != want for got, want in zip(value.shape, shape)
        ):
            raise ContractViolationError(
                f"{name}: expected shape {shape}, got {value.shape}"
            )
    if writeable is not None and bool(value.flags.writeable) != writeable:
        state = "writeable" if value.flags.writeable else "read-only"
        want = "writeable" if writeable else "read-only"
        raise ContractViolationError(f"{name}: expected {want} array, got {state}")
    if c_contiguous is not None and bool(value.flags.c_contiguous) != c_contiguous:
        raise ContractViolationError(
            f"{name}: expected c_contiguous={c_contiguous}, got "
            f"{bool(value.flags.c_contiguous)}"
        )
    return value


def check_close(
    value: Any,
    reference: Any,
    *,
    rtol: float,
    atol: float = 0.0,
    name: str = "array",
) -> Any:
    """Bound ``value``'s inf-norm relative error against ``reference``.

    The numeric-accuracy contract of the reduced-precision serving paths:
    ``max |value - reference|`` must not exceed
    ``atol + rtol * max |reference|``.  Unlike :func:`check_array` this
    *does* traverse the data, so callers gate it behind the same
    ``REPRO_CONTRACTS`` switch (it is a no-op when contracts are
    disabled).  Non-finite entries in ``value`` always violate the
    contract -- an overflowed float32 prediction must not pass just
    because the reference overflowed the same way.
    """
    if not contracts_enabled():
        return value
    got = np.asarray(value, dtype=np.float64)
    want = np.asarray(reference, dtype=np.float64)
    if got.shape != want.shape:
        raise ContractViolationError(
            f"{name}: shape {got.shape} does not match reference {want.shape}"
        )
    if got.size and not np.all(np.isfinite(got)):
        raise ContractViolationError(f"{name}: contains non-finite entries")
    if got.size == 0:
        return value
    error = float(np.max(np.abs(got - want)))
    bound = atol + rtol * float(np.max(np.abs(want)))
    if error > bound:
        raise ContractViolationError(
            f"{name}: max abs error {error:.3e} exceeds bound {bound:.3e} "
            f"(rtol={rtol:.1e}, atol={atol:.1e})"
        )
    return value


def returns_array(**spec: Any) -> Callable:
    """Decorator: the wrapped function's return value must satisfy ``spec``.

    Example
    -------
    >>> @returns_array(dtype=np.float64, ndim=2, c_contiguous=True)
    ... def design_matrix(...): ...
    """

    def decorate(func: Callable) -> Callable:
        label = spec.pop("name", f"{func.__qualname__}() return value")

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            return check_array(result, name=label, **spec)

        wrapper.__contract__ = dict(spec, name=label)
        return wrapper

    return decorate


def accepts_arrays(**per_arg: Dict[str, Any]) -> Callable:
    """Decorator: named arguments must satisfy their per-argument specs.

    Example
    -------
    >>> @accepts_arrays(design={"dtype": np.float64, "ndim": 2})
    ... def fit_design(self, design, target): ...
    """
    import inspect

    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)
        unknown = set(per_arg) - set(signature.parameters)
        if unknown:
            raise ValueError(
                f"{func.__qualname__} has no parameter(s) {sorted(unknown)}"
            )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if contracts_enabled():
                bound = signature.bind_partial(*args, **kwargs)
                for arg_name, spec in per_arg.items():
                    if arg_name in bound.arguments:
                        check_array(
                            bound.arguments[arg_name],
                            name=f"{func.__qualname__}({arg_name})",
                            **spec,
                        )
            return func(*args, **kwargs)

        wrapper.__contract__ = dict(per_arg)
        return wrapper

    return decorate
