"""Domain-specific correctness rules (REP001-REP009, REP013-REP014) for this codebase.

Each rule guards an invariant the runtime layer depends on: deterministic
seeded RNG flow, no silent float-equality traps, no shared mutable state
without a lock, no validation that disappears under ``python -O``, no
file handles opened outside a ``with`` block.  See ``docs/analysis.md``
for the rationale and suppression workflow.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .engine import LintContext, Rule, register_rule
from .violations import Severity, Violation

__all__ = [
    "GlobalStateRngRule",
    "UnseededDefaultRngRule",
    "FloatEqualityRule",
    "MutableDefaultArgRule",
    "UnlockedModuleStateRule",
    "SwallowedExceptionRule",
    "AssertForValidationRule",
    "SleepInLibraryRule",
    "UnmanagedFileHandleRule",
    "UndeclaredMetricRule",
    "UntimedBlockingWaitRule",
]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as a dotted string (None if not one)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_float_literal(node: ast.AST) -> bool:
    """A float constant, including a negated one like ``-0.5``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


#: Constructors whose results are mutable containers.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "OrderedDict", "defaultdict", "deque", "Counter"}
)


def _is_mutable_expr(node: ast.AST) -> bool:
    """Literal/constructor expressions that produce a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
            return True
    return False


@register_rule
class GlobalStateRngRule(Rule):
    """REP001: use of numpy's legacy global-state RNG."""

    rule_id = "REP001"
    description = "legacy global-state numpy RNG"
    rationale = (
        "np.random.seed()/np.random.rand*() mutate hidden process-global "
        "state, so results depend on import order and thread interleaving; "
        "every sampling path must take an explicit np.random.Generator."
    )
    node_types = (ast.Attribute,)

    _LEGACY = frozenset(
        {
            "seed",
            "get_state",
            "set_state",
            "rand",
            "randn",
            "randint",
            "random",
            "random_sample",
            "random_integers",
            "ranf",
            "sample",
            "choice",
            "shuffle",
            "permutation",
            "normal",
            "standard_normal",
            "uniform",
            "binomial",
            "poisson",
            "exponential",
            "beta",
            "gamma",
            "lognormal",
            "multivariate_normal",
        }
    )

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        dotted = _dotted_name(node)
        if dotted is None:
            return
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in self._LEGACY
        ):
            yield self.violation(
                node,
                ctx,
                f"`{dotted}` uses the hidden global RNG; pass a seeded "
                "np.random.Generator instead",
            )


@register_rule
class UnseededDefaultRngRule(Rule):
    """REP002: ``default_rng()`` with no seed outside tests."""

    rule_id = "REP002"
    description = "unseeded default_rng() in library code"
    rationale = (
        "An unseeded Generator draws OS entropy, making runs "
        "unreproducible; library code must accept or derive a seed."
    )
    node_types = (ast.Call,)
    applies_to_tests = False

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        dotted = _dotted_name(node.func)
        if dotted is None or dotted.rsplit(".", 1)[-1] != "default_rng":
            return
        seed_args = [a for a in node.args if not isinstance(a, ast.Starred)]
        seed_kwargs = [k for k in node.keywords if k.arg == "seed"]
        unseeded = not node.args and not seed_kwargs
        if seed_args and isinstance(seed_args[0], ast.Constant) and seed_args[0].value is None:
            unseeded = True
        if seed_kwargs and (
            isinstance(seed_kwargs[0].value, ast.Constant)
            and seed_kwargs[0].value.value is None
        ):
            unseeded = True
        if any(isinstance(a, ast.Starred) for a in node.args):
            unseeded = False  # cannot tell statically; give the benefit of the doubt
        if unseeded:
            yield self.violation(
                node,
                ctx,
                "default_rng() without a seed is unreproducible; thread an "
                "explicit seed or Generator through instead",
            )


@register_rule
class FloatEqualityRule(Rule):
    """REP003: ``==``/``!=`` against a float literal."""

    rule_id = "REP003"
    description = "exact equality against a float literal"
    rationale = (
        "Computed floats differ from literals by round-off; compare with "
        "a tolerance (repro.linalg.is_effectively_zero) unless the value "
        "is an exact sentinel, which must be marked with a noqa comment."
    )
    node_types = (ast.Compare,)
    applies_to_tests = False

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        elements = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(elements[i]) or _is_float_literal(elements[i + 1]):
                yield self.violation(
                    node,
                    ctx,
                    "exact ==/!= against a float literal; use a tolerance "
                    "check (e.g. repro.linalg.is_effectively_zero) or mark "
                    "the sentinel with `# repro: noqa[REP003]`",
                )
                return


@register_rule
class MutableDefaultArgRule(Rule):
    """REP004: mutable default argument."""

    rule_id = "REP004"
    description = "mutable default argument"
    rationale = (
        "Default values are evaluated once at definition time, so a "
        "mutable default is shared across every call."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            if _is_mutable_expr(default):
                name = getattr(node, "name", "<lambda>")
                yield self.violation(
                    default,
                    ctx,
                    f"mutable default argument in `{name}`; use None and "
                    "construct inside the body",
                )


@register_rule
class UnlockedModuleStateRule(Rule):
    """REP005: module-level mutable container without a module-level lock."""

    rule_id = "REP005"
    description = "module-level mutable state without a lock"
    rationale = (
        "Process-global containers are shared across threads (metrics "
        "registry, design cache); every module holding one must also hold "
        "a threading.Lock guarding its mutation paths."
    )
    node_types = (ast.Module,)

    _LOCK_NAMES = frozenset({"Lock", "RLock", "named_lock", "named_rlock"})

    def _has_module_lock(self, module: ast.Module) -> bool:
        for stmt in module.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if isinstance(value, ast.Call):
                name = _dotted_name(value.func)
                if name is not None and name.rsplit(".", 1)[-1] in self._LOCK_NAMES:
                    return True
        return False

    @staticmethod
    def _is_constant_name(name: str) -> bool:
        stripped = name.lstrip("_")
        return name.startswith("__") or (stripped.isupper() and bool(stripped))

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        has_lock = self._has_module_lock(node)
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if value is None or not _is_mutable_expr(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if self._is_constant_name(target.id):
                    continue  # UPPER_CASE / dunder: read-only by convention
                if has_lock:
                    continue
                yield self.violation(
                    stmt,
                    ctx,
                    f"module-level mutable `{target.id}` has no accompanying "
                    "threading.Lock in this module",
                )


@register_rule
class SwallowedExceptionRule(Rule):
    """REP006: bare except or handler that silently swallows."""

    rule_id = "REP006"
    description = "bare except / silently swallowed exception"
    rationale = (
        "Bare excepts catch KeyboardInterrupt/SystemExit, and pass-only "
        "handlers hide real failures; catch narrowly and at least log."
    )
    node_types = (ast.ExceptHandler,)

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        if node.type is None:
            yield self.violation(
                node, ctx, "bare `except:` catches SystemExit/KeyboardInterrupt; name the exception"
            )
        elif self._swallows(node):
            yield self.violation(
                node, ctx, "exception handler silently swallows; handle, log, or re-raise"
            )


@register_rule
class AssertForValidationRule(Rule):
    """REP007: ``assert`` used for runtime validation in library code."""

    rule_id = "REP007"
    description = "assert used for runtime validation in src/"
    rationale = (
        "Assertions are stripped under `python -O`, so library invariants "
        "guarded by assert vanish in optimized deployments; raise "
        "ValueError/TypeError instead."
    )
    node_types = (ast.Assert,)
    applies_to_tests = False
    severity = Severity.ERROR

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        yield self.violation(
            node,
            ctx,
            "assert is stripped under -O; raise an explicit exception for "
            "runtime validation",
        )


@register_rule
class SleepInLibraryRule(Rule):
    """REP008: ``time.sleep`` in library code outside sanctioned modules."""

    rule_id = "REP008"
    description = "time.sleep in library code outside repro.faults"
    rationale = (
        "Ad-hoc sleeps in library code hide races, stall the serving path, "
        "and make latency untestable; blocking delays belong to the "
        "sanctioned backoff/latency-injection modules in repro/faults/, "
        "where they are policy-driven and fault-plan controlled."
    )
    node_types = (ast.Call,)
    applies_to_tests = False

    #: Path fragments whose modules may legitimately sleep: the retry
    #: backoff and the latency-injection dispatch.
    _SANCTIONED = ("repro/faults/",)

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        dotted = _dotted_name(node.func)
        if dotted is None or dotted not in ("time.sleep", "sleep"):
            return
        if dotted == "sleep" and not isinstance(node.func, ast.Name):
            return
        normalized = ctx.path.replace("\\", "/")
        if any(fragment in normalized for fragment in self._SANCTIONED):
            return
        yield self.violation(
            node,
            ctx,
            "time.sleep outside repro/faults/; inject latency via a "
            "FaultPlan or back off via RetryPolicy instead",
        )


@register_rule
class UnmanagedFileHandleRule(Rule):
    """REP009: ``open()``/``NamedTemporaryFile`` outside a ``with`` block."""

    rule_id = "REP009"
    description = "file handle opened outside a with block"
    rationale = (
        "A handle not bound to a `with` block leaks its descriptor on any "
        "exception between open and close, and an unflushed buffer can "
        "outlive the code that believes it wrote; the crash-safe store's "
        "atomic-rename protocol requires every temp handle to be closed "
        "before os.replace.  Deliberately long-lived handles must carry a "
        "noqa with justification."
    )
    # The rule needs to know which calls sit inside a `with` item, so it
    # takes the whole module and walks it once itself.
    node_types = (ast.Module,)
    applies_to_tests = False

    #: Exact dotted names always treated as file-handle constructors.
    #: ``os.open`` (raw fd) and ``path.open`` (method) deliberately absent.
    _EXACT_OPENERS = frozenset({"open", "io.open"})

    def _is_opener(self, call: ast.Call) -> bool:
        dotted = _dotted_name(call.func)
        if dotted is None:
            return False
        if dotted in self._EXACT_OPENERS:
            return True
        return dotted.rsplit(".", 1)[-1] == "NamedTemporaryFile"

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        managed = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    for inner in ast.walk(item.context_expr):
                        if isinstance(inner, ast.Call):
                            managed.add(inner)
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and sub not in managed
                and self._is_opener(sub)
            ):
                dotted = _dotted_name(sub.func)
                yield self.violation(
                    sub,
                    ctx,
                    f"`{dotted}(...)` outside a with block leaks the handle "
                    "on error; bind it with `with` (or noqa a deliberately "
                    "long-lived handle)",
                )


@register_rule
class UndeclaredMetricRule(Rule):
    """REP013: metric name emitted but not declared in the runtime catalog."""

    rule_id = "REP013"
    description = "metric name not declared in repro.runtime.catalog"
    rationale = (
        "Dashboards, the docs metric tables, and the loadgen report "
        "schema key off the central catalog; a counter incremented under "
        "an undeclared name is invisible to all of them.  Declare it in "
        "repro.runtime.catalog.METRICS/TIMERS (dynamic names must start "
        "with a DYNAMIC_PREFIXES entry) and document it under docs/."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    applies_to_tests = False

    def _is_metrics_receiver(self, receiver: ast.AST) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id in ("metrics", "_metrics")
        if isinstance(receiver, ast.Call):
            dotted = _dotted_name(receiver.func)
            return dotted is not None and dotted.rsplit(".", 1)[-1] == "_metrics"
        dotted = _dotted_name(receiver)
        return dotted is not None and dotted.rsplit(".", 1)[-1] == "metrics"

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "increment",
            "timer",
        ):
            return
        if not self._is_metrics_receiver(func.value) or not node.args:
            return
        # Imported late: the catalog lives in repro.runtime, which pulls in
        # modules that themselves import repro.analysis at import time.
        from ..runtime.catalog import DYNAMIC_PREFIXES, is_declared

        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not is_declared(arg.value):
                yield self.violation(
                    node,
                    ctx,
                    f"metric `{arg.value}` is not declared in "
                    "repro.runtime.catalog",
                )
        elif isinstance(arg, ast.JoinedStr):
            head = arg.values[0] if arg.values else None
            prefix = (
                head.value
                if isinstance(head, ast.Constant) and isinstance(head.value, str)
                else ""
            )
            if not any(
                prefix == p or prefix.startswith(p) for p in DYNAMIC_PREFIXES
            ):
                yield self.violation(
                    node,
                    ctx,
                    "dynamically-formatted metric name must start with a "
                    "declared DYNAMIC_PREFIXES entry from "
                    "repro.runtime.catalog",
                )


@register_rule
class UntimedBlockingWaitRule(Rule):
    """REP014: un-timed ``.result()`` / ``.join()`` / ``.wait()`` in library code."""

    rule_id = "REP014"
    description = "un-timed blocking wait (.result/.join/.wait) in library code"
    rationale = (
        "An un-timed Future.result(), Thread.join(), or Event.wait() is a "
        "hang in disguise: if the producer died (a dispatcher crash, an "
        "engine stopped without resolving the future) the caller is "
        "stranded forever with no error.  Library waits must carry a "
        "timeout, poll with a liveness check (PredictionEngine."
        "await_result), or be provably bounded and noqa-sanctioned.  "
        "Complements REP011, which only covers blocking *under a lock*."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    applies_to_tests = False

    #: Path fragments whose modules may block without a timeout: the
    #: fault substrate's latency injection and deadline plumbing are the
    #: sanctioned home of deliberate blocking.
    _SANCTIONED = ("repro/faults/",)
    _METHODS = frozenset({"result", "join", "wait"})

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._METHODS:
            return
        # Any positional argument is a timeout (or, for str.join, an
        # iterable -- not a blocking wait at all); an explicit timeout=
        # keyword is the bounded form; **kwargs is opaque, give it the
        # benefit of the doubt.
        if node.args:
            return
        if any(kw.arg is None or kw.arg == "timeout" for kw in node.keywords):
            return
        normalized = ctx.path.replace("\\", "/")
        if any(fragment in normalized for fragment in self._SANCTIONED):
            return
        yield self.violation(
            node,
            ctx,
            f"un-timed .{func.attr}() can strand the caller if the "
            "producer dies; pass a timeout, use a liveness-checked wait, "
            "or sanction a provably bounded join with a noqa",
        )
