"""Reusable AST lint engine: rule registry, dispatch, and suppressions.

The engine parses each file once, walks the tree once, and dispatches every
node to the rules that registered interest in its type — so adding rules
does not add walks.  Findings on a line carrying a matching
``# repro: noqa[RULE]`` comment (or a bare ``# repro: noqa``) are
suppressed at collection time.

Rules are small classes registered with :func:`register_rule`; each
declares the node types it wants, a stable ``rule_id``, a default
:class:`~repro.analysis.violations.Severity`, and whether it applies to
test files (exact-value assertions and ad-hoc RNGs are legitimate in
tests, so several rules opt out there).

Two rule shapes exist: plain :class:`Rule` subclasses see one node at a
time within one file, while :class:`ProjectRule` subclasses observe every
linted file and emit findings once the whole target set has been seen —
the shape cross-file analyses (e.g. the REP012 lock-order graph) need.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type, Union

from ..locks import named_lock
from .violations import Severity, Violation

__all__ = [
    "LintContext",
    "LintEngine",
    "Rule",
    "ProjectRule",
    "register_rule",
    "registered_rules",
    "iter_python_files",
]

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Directory names never descended into when expanding lint targets.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


class LintContext:
    """Per-file state handed to every rule invocation."""

    def __init__(self, path: str, source: str, tree: ast.Module, is_test: bool):
        self.path = path
        self.source = source
        self.tree = tree
        self.is_test = is_test
        self._lines = source.splitlines()

    def line_text(self, lineno: int) -> str:
        """Stripped source text of a 1-based line ('' when out of range)."""
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1].strip()
        return ""

    def suppressed_rules(self, lineno: int) -> Optional[frozenset]:
        """Rules suppressed on a line: a set of ids, or None for 'all'.

        Returns an empty frozenset when the line carries no noqa comment.
        """
        match = _NOQA_PATTERN.search(self.line_text(lineno))
        if match is None:
            return frozenset()
        rules = match.group("rules")
        if rules is None:
            return None  # bare noqa: everything suppressed
        return frozenset(part.strip().upper() for part in rules.split(",") if part.strip())


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Violation` instances for each offending node.
    """

    rule_id: str = ""
    description: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    #: AST node classes this rule wants to see.
    node_types: Tuple[type, ...] = ()
    #: Whether the rule also runs on test files (tests/, test_*.py, conftest).
    applies_to_tests: bool = True

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, node: ast.AST, ctx: LintContext, message: Optional[str] = None
    ) -> Violation:
        """Build a violation anchored at ``node`` with this rule's identity."""
        line = getattr(node, "lineno", 1)
        return Violation(
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message if message is not None else self.description,
            severity=self.severity,
            line_text=ctx.line_text(line),
        )


class ProjectRule(Rule):
    """A rule that needs the whole lint target set before it can report.

    The engine calls :meth:`begin` once per run, :meth:`observe` for every
    parsed file (skipping tests unless ``applies_to_tests``), and finally
    :meth:`finish`, whose violations are suppression-filtered against the
    file each one anchors to.  ``node_types`` stays empty — project rules
    never take part in per-node dispatch.
    """

    node_types: Tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Violation]:
        return iter(())

    def begin(self) -> None:
        """Reset per-run state; called before any file is observed."""

    def observe(self, ctx: LintContext) -> None:
        """Record whatever this rule needs from one parsed file."""

    def finish(self) -> Iterator[Violation]:
        """Yield findings after every file has been observed."""
        return iter(())


_registry_lock = named_lock("analysis.rule_registry")
_registry: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (id-unique)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    with _registry_lock:
        existing = _registry.get(cls.rule_id)
        if existing is not None and existing is not cls:
            raise ValueError(f"duplicate rule id {cls.rule_id!r}")
        _registry[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the registry, keyed by rule id."""
    with _registry_lock:
        return dict(_registry)


def _looks_like_test(path: Path) -> bool:
    name = path.name
    if name.startswith("test_") or name == "conftest.py":
        return True
    return any(part in ("tests", "testing") for part in path.parts)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not any(part in _SKIPPED_DIRS for part in child.parts):
                    yield child
        elif path.suffix == ".py":
            yield path


class LintEngine:
    """Runs a set of rules over sources, files, or directory trees."""

    def __init__(
        self,
        rules: Optional[Iterable[Rule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ):
        if rules is None:
            rules = [cls() for _, cls in sorted(registered_rules().items())]
        rules = list(rules)
        if select is not None:
            wanted = {r.upper() for r in select}
            unknown = wanted - {r.rule_id for r in rules}
            if unknown:
                raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
            rules = [r for r in rules if r.rule_id in wanted]
        if ignore is not None:
            dropped = {r.upper() for r in ignore}
            rules = [r for r in rules if r.rule_id not in dropped]
        self.rules: List[Rule] = rules
        self._project_rules: List[ProjectRule] = [
            r for r in self.rules if isinstance(r, ProjectRule)
        ]
        # Node-type -> interested rules, built once per engine.
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    # ------------------------------------------------------------------
    def _parse(
        self, source: str, path: str, is_test: bool
    ) -> Union[LintContext, Violation]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="PARSE",
                message=f"could not parse file: {exc.msg}",
                severity=Severity.ERROR,
            )
        return LintContext(path, source, tree, is_test)

    def _check_context(self, ctx: LintContext) -> List[Violation]:
        """Run the per-node rules over one parsed file."""
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            for rule in self._dispatch.get(type(node), ()):
                if ctx.is_test and not rule.applies_to_tests:
                    continue
                for violation in rule.check(node, ctx):
                    suppressed = ctx.suppressed_rules(violation.line)
                    if suppressed is None or violation.rule_id in suppressed:
                        continue
                    out.append(violation)
        return out

    def _project_pass(self, contexts: Sequence[LintContext]) -> List[Violation]:
        """Run every project rule once over the full set of parsed files.

        Findings that anchor inside a linted file are suppression-filtered
        against that file's noqa comments; findings anchored elsewhere
        (e.g. seeded lock-order edges with no source location) pass
        through unfiltered.
        """
        by_path = {ctx.path: ctx for ctx in contexts}
        out: List[Violation] = []
        for rule in self._project_rules:
            rule.begin()
            for ctx in contexts:
                if ctx.is_test and not rule.applies_to_tests:
                    continue
                rule.observe(ctx)
            for violation in rule.finish():
                ctx = by_path.get(violation.path)
                if ctx is not None:
                    suppressed = ctx.suppressed_rules(violation.line)
                    if suppressed is None or violation.rule_id in suppressed:
                        continue
                out.append(violation)
        return out

    def lint_source(
        self, source: str, path: str = "<string>", is_test: bool = False
    ) -> List[Violation]:
        """Lint one source string; returns sorted, suppression-filtered findings."""
        parsed = self._parse(source, path, is_test)
        if isinstance(parsed, Violation):
            return [parsed]
        out = self._check_context(parsed)
        out.extend(self._project_pass([parsed]))
        out.sort(key=Violation.sort_key)
        return out

    def lint_file(self, path: Path) -> List[Violation]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Violation(
                    path=str(path),
                    line=1,
                    col=0,
                    rule_id="PARSE",
                    message=f"could not read file: {exc}",
                    severity=Severity.ERROR,
                )
            ]
        return self.lint_source(source, path=str(path), is_test=_looks_like_test(path))

    def lint_paths(self, paths: Sequence[str]) -> List[Violation]:
        """Lint every python file under the given files/directories.

        Per-node rules run file by file; project rules see the *whole*
        target set in one pass, so cross-file findings (REP012) emerge
        here rather than per file.
        """
        out: List[Violation] = []
        contexts: List[LintContext] = []
        for path in iter_python_files(paths):
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                out.append(
                    Violation(
                        path=str(path),
                        line=1,
                        col=0,
                        rule_id="PARSE",
                        message=f"could not read file: {exc}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            parsed = self._parse(source, str(path), _looks_like_test(path))
            if isinstance(parsed, Violation):
                out.append(parsed)
                continue
            contexts.append(parsed)
            out.extend(self._check_context(parsed))
        out.extend(self._project_pass(contexts))
        out.sort(key=Violation.sort_key)
        return out
