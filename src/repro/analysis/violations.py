"""Data model for lint findings: severity levels and the Violation record."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (ERROR > WARNING)."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Violation:
    """One lint finding at a specific source location.

    Attributes
    ----------
    path:
        Repository-relative (or as-given) path of the offending file.
    line / col:
        1-based line and 0-based column of the offending node.
    rule_id:
        Identifier of the rule that fired (``"REP003"``), or ``"PARSE"``
        for files the engine could not parse.
    message:
        Human-readable description of the problem.
    severity:
        :class:`Severity` of the finding.
    line_text:
        The stripped source line, used for baseline fingerprinting so
        entries survive unrelated line-number drift.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR
    line_text: str = field(default="", compare=False)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"
