"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes: 0 = clean (or only baselined findings), 1 = new violations,
2 = usage error (argparse) or unreadable baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import rules as _rules  # noqa: F401 -- import registers the rule set
from .baseline import filter_baselined, load_baseline, write_baseline
from .engine import LintEngine, registered_rules
from .reporters import format_json, format_text, summarize
from .violations import Severity

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based correctness linter for the repro codebase: "
            "deterministic-RNG, float-equality, and shared-state rules "
            "(REP001-REP007)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted findings; only new ones fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(registered_rules().items()):
            print(f"{rule_id}  [{cls.severity}]  {cls.description}")
            print(f"        {cls.rationale}")
        return 0

    try:
        engine = LintEngine(select=_split(args.select), ignore=_split(args.ignore))
    except ValueError as exc:
        parser.error(str(exc))

    violations = engine.lint_paths(args.paths)

    if args.write_baseline:
        if args.baseline is None:
            parser.error("--write-baseline requires --baseline FILE")
        write_baseline(args.baseline, violations)
        print(f"baseline written to {args.baseline}: {summarize(violations)}")
        return 0

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        violations = filter_baselined(violations, baseline)

    if args.format == "json":
        print(format_json(violations))
    else:
        print(format_text(violations))

    has_errors = any(v.severity >= Severity.ERROR for v in violations)
    return 1 if has_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
