"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes: 0 = clean (or only baselined findings), 1 = new violations,
2 = usage error (argparse) or unreadable baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import concurrency as _concurrency  # noqa: F401 -- registers REP010-REP012
from . import rules as _rules  # noqa: F401 -- import registers the rule set
from .baseline import filter_baselined, load_baseline, write_baseline
from .engine import _NOQA_PATTERN, LintEngine, iter_python_files, registered_rules
from .reporters import format_github, format_json, format_text, summarize
from .violations import Severity

__all__ = ["main", "build_parser", "audit_suppressions"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based correctness linter for the repro codebase: "
            "deterministic-RNG, float-equality, shared-state, "
            "lock-discipline, and metric-catalog rules (REP001-REP013)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format; 'github' emits workflow-command annotations "
        "(default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted findings; only new ones fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--audit-suppressions",
        action="store_true",
        help=(
            "list every '# repro: noqa[...]' suppression in the given paths "
            "with a per-rule tally, then exit 0 (an audit, not a gate)"
        ),
    )
    return parser


def audit_suppressions(paths: List[str]) -> int:
    """Print every lint-suppression comment under ``paths``; returns 0.

    Each occurrence is listed as ``path:line: [RULES] source-text`` so a
    reviewer can audit what the codebase has opted out of; a per-rule tally
    follows.  Suppressions are legitimate (each carries a justification
    inline), so this is informational and never fails the build.
    """
    occurrences = []  # (path, lineno, rules-label, stripped line)
    tally: dict = {}
    for path in sorted(set(iter_python_files(paths))):
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_PATTERN.search(line)
            if match is None:
                continue
            raw_rules = match.group("rules")
            if raw_rules is None:
                rules = ("ALL",)
            else:
                rules = tuple(
                    part.strip().upper()
                    for part in raw_rules.split(",")
                    if part.strip()
                )
            for rule in rules:
                tally[rule] = tally.get(rule, 0) + 1
            occurrences.append((path, lineno, ",".join(rules), line.strip()))
    for path, lineno, label, text in occurrences:
        print(f"{path}:{lineno}: [{label}] {text}")
    if occurrences:
        summary = ", ".join(f"{rule}={tally[rule]}" for rule in sorted(tally))
        print(f"{len(occurrences)} suppression(s): {summary}")
    else:
        print("0 suppressions")
    return 0


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.audit_suppressions:
        return audit_suppressions(args.paths)

    if args.list_rules:
        for rule_id, cls in sorted(registered_rules().items()):
            print(f"{rule_id}  [{cls.severity}]  {cls.description}")
            print(f"        {cls.rationale}")
        return 0

    try:
        engine = LintEngine(select=_split(args.select), ignore=_split(args.ignore))
    except ValueError as exc:
        parser.error(str(exc))

    violations = engine.lint_paths(args.paths)

    if args.write_baseline:
        if args.baseline is None:
            parser.error("--write-baseline requires --baseline FILE")
        write_baseline(args.baseline, violations)
        print(f"baseline written to {args.baseline}: {summarize(violations)}")
        return 0

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        violations = filter_baselined(violations, baseline)

    if args.format == "json":
        print(format_json(violations))
    elif args.format == "github":
        print(format_github(violations))
    else:
        print(format_text(violations))

    has_errors = any(v.severity >= Severity.ERROR for v in violations)
    return 1 if has_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
