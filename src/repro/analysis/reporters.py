"""Render lint findings: text (terminals), JSON (tooling), or GitHub
workflow-command annotations (``--format github`` in the CI lint job)."""

from __future__ import annotations

import json
from typing import List, Sequence

from .violations import Severity, Violation

__all__ = ["format_text", "format_json", "format_github", "summarize"]


def summarize(violations: Sequence[Violation]) -> str:
    """One-line tally, e.g. ``3 violations (2 errors, 1 warning)``."""
    errors = sum(1 for v in violations if v.severity >= Severity.ERROR)
    warnings = len(violations) - errors
    if not violations:
        return "no violations"
    noun = "violation" if len(violations) == 1 else "violations"
    return (
        f"{len(violations)} {noun} "
        f"({errors} error{'s' if errors != 1 else ''}, "
        f"{warnings} warning{'s' if warnings != 1 else ''})"
    )


def format_text(violations: Sequence[Violation]) -> str:
    """GCC-style ``path:line:col: RULE [severity] message`` lines + summary."""
    lines: List[str] = [
        f"{v.location()}: {v.rule_id} [{v.severity}] {v.message}" for v in violations
    ]
    lines.append(summarize(violations))
    return "\n".join(lines)


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (GitHub's escaping rules)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    """Escape workflow-command message data."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def format_github(violations: Sequence[Violation]) -> str:
    """GitHub Actions annotations: one ``::error``/``::warning`` line each.

    Emitted to stdout inside a workflow run, these surface as inline
    annotations on the PR diff at the offending file/line.  The summary
    line at the end is plain text (invisible to the annotation parser).
    """
    lines: List[str] = []
    for v in violations:
        command = "error" if v.severity >= Severity.ERROR else "warning"
        lines.append(
            f"::{command} file={_escape_property(v.path)}"
            f",line={v.line},col={v.col + 1}"
            f",title={_escape_property(v.rule_id)}"
            f"::{_escape_data(v.message)}"
        )
    lines.append(summarize(violations))
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """JSON document: ``{"violations": [...], "counts": {...}}``."""
    payload = {
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "severity": str(v.severity),
                "message": v.message,
            }
            for v in violations
        ],
        "counts": {
            "total": len(violations),
            "errors": sum(1 for v in violations if v.severity >= Severity.ERROR),
            "warnings": sum(1 for v in violations if v.severity < Severity.ERROR),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
