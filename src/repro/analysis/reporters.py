"""Render lint findings as text (for terminals/CI) or JSON (for tooling)."""

from __future__ import annotations

import json
from typing import List, Sequence

from .violations import Severity, Violation

__all__ = ["format_text", "format_json", "summarize"]


def summarize(violations: Sequence[Violation]) -> str:
    """One-line tally, e.g. ``3 violations (2 errors, 1 warning)``."""
    errors = sum(1 for v in violations if v.severity >= Severity.ERROR)
    warnings = len(violations) - errors
    if not violations:
        return "no violations"
    noun = "violation" if len(violations) == 1 else "violations"
    return (
        f"{len(violations)} {noun} "
        f"({errors} error{'s' if errors != 1 else ''}, "
        f"{warnings} warning{'s' if warnings != 1 else ''})"
    )


def format_text(violations: Sequence[Violation]) -> str:
    """GCC-style ``path:line:col: RULE [severity] message`` lines + summary."""
    lines: List[str] = [
        f"{v.location()}: {v.rule_id} [{v.severity}] {v.message}" for v in violations
    ]
    lines.append(summarize(violations))
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """JSON document: ``{"violations": [...], "counts": {...}}``."""
    payload = {
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "severity": str(v.severity),
                "message": v.message,
            }
            for v in violations
        ],
        "counts": {
            "total": len(violations),
            "errors": sum(1 for v in violations if v.severity >= Severity.ERROR),
            "warnings": sum(1 for v in violations if v.severity < Severity.ERROR),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
