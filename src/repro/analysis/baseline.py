"""Baseline files: accept existing debt, fail CI only on *new* violations.

A baseline is a JSON map from violation fingerprints to occurrence counts.
Fingerprints hash the offending line's *text* (not its number), so a
baseline survives unrelated edits that shift lines; adding a second
occurrence of a baselined pattern still fails, because counts are compared.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Counter as CounterType
from typing import Dict, List, Sequence
from collections import Counter

from .violations import Violation

__all__ = ["fingerprint", "load_baseline", "write_baseline", "filter_baselined"]


def fingerprint(violation: Violation) -> str:
    """Stable identity of a finding: path, rule, and offending-line digest."""
    digest = hashlib.sha1(violation.line_text.encode("utf-8")).hexdigest()[:12]
    path = Path(violation.path).as_posix()
    return f"{path}::{violation.rule_id}::{digest}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file; raises ValueError on malformed content."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = raw.get("violations") if isinstance(raw, dict) else None
    if not isinstance(entries, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in entries.items()
    ):
        raise ValueError(f"malformed baseline file: {path}")
    return dict(entries)


def write_baseline(path: Path, violations: Sequence[Violation]) -> Dict[str, int]:
    """Write the given findings as the new accepted baseline."""
    counts: CounterType[str] = Counter(fingerprint(v) for v in violations)
    payload = {"version": 1, "violations": dict(sorted(counts.items()))}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return dict(counts)


def filter_baselined(
    violations: Sequence[Violation], baseline: Dict[str, int]
) -> List[Violation]:
    """Findings not covered by the baseline (per-fingerprint counted)."""
    remaining = dict(baseline)
    out: List[Violation] = []
    for violation in violations:
        key = fingerprint(violation)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            continue
        out.append(violation)
    return out
