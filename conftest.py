"""Repo-root pytest plugin: a hang guard for every test directory.

When the ``pytest-timeout`` plugin is installed it enforces the
``timeout`` ini setting from ``pyproject.toml``; when it is not (this
repo cannot assume it), the SIGALRM-based fallback below reads the same
setting so a deadlocked test still fails instead of wedging the whole
run.  Living at the repo root, the shim covers ``tests/`` and
``benchmarks/`` alike.
"""

from __future__ import annotations

import signal

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        # pytest-timeout normally registers this ini key; declare it here so
        # pyproject's `timeout = 120` is not an unknown-option warning.
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback shim)",
            default="0",
        )

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        seconds = float(item.config.getini("timeout") or 0)
        marker = item.get_closest_marker("timeout")
        if marker and marker.args:
            seconds = float(marker.args[0])
        if seconds <= 0 or not hasattr(signal, "SIGALRM"):
            yield
            return

        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {seconds:.0f}s fallback timeout"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
