"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so ``pip install -e .`` keeps working on minimal environments that lack the
``wheel`` package required by PEP-517 editable builds.
"""

from setuptools import setup

setup()
